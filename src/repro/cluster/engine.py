"""Heap-scheduled discrete-event core on the virtual clock.

The serving loop used to materialize every arrival, sort them, and
scan — fine at 10³ requests, hopeless at 10⁶.  :class:`EventEngine`
replaces that structure with the classic discrete-event simulation
core: a binary heap of ``(time, seq, event)`` entries popped in time
order, with ties broken **deterministically by insertion sequence** —
two events at the same virtual instant always fire in the order they
were scheduled, so a simulation is bit-reproducible regardless of heap
internals.

Design points that keep a 10⁶-event run in bounded wall time and
memory:

- **Lazy generation composes naturally.**  An event callback may
  schedule further events (the next arrival, the batch dispatch, the
  autoscaler's next tick), so arrivals stream through the engine one
  at a time and a request trace never has to exist as a list.
- **O(log n) everything.**  ``at`` and ``run`` are plain ``heapq``
  push/pop over ``(time_s, seq, event)`` tuples — the comparisons stay
  in C (two floats, then two ints; the :class:`Event` object itself is
  never compared because ``seq`` is unique).
- **Cancellation is lazy, but tombstones are bounded.**  ``cancel``
  tombstones the event in O(1) and immediately drops its callback and
  arguments (a cancelled dispatch closure would otherwise pin its
  requests until popped).  When tombstones outnumber live events the
  heap is compacted in one O(n) filter-and-heapify pass, so a
  cancel-heavy run — the serving loop cancels the pending batch
  dispatch after *every* arrival — keeps the heap O(live) instead of
  O(total arrivals).
- **Event objects are pooled.**  The arrival→dispatch cycle allocates
  one :class:`Event` per event; fired and compacted-away events return
  to a bounded free list and are reused by the next ``at``.  The
  corollary is the handle contract below.
- **The clock never goes backwards.**  Scheduling strictly in the past
  raises; scheduling *at* the current instant is allowed (the serving
  loop's "flush now" rule) and fires after the current callback
  returns.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

__all__ = ["Event", "EventEngine"]

# Recycled Event objects kept for reuse.  Bounded: a burst that
# schedules far ahead should not pin its peak event count forever.
_POOL_MAX = 256

# Compaction floor: below this many tombstones the O(n) rebuild costs
# more than lazily popping them ever would.
_COMPACT_MIN = 64


class Event:
    """One scheduled callback; returned by :meth:`EventEngine.at`.

    Events order by ``(time_s, seq)`` — virtual time first, insertion
    sequence as the deterministic tie-break.  Treat instances as opaque
    handles: the only supported operation is passing one to
    :meth:`EventEngine.cancel`, and only **while the event is still
    pending**.  Once an event has fired (or been cancelled) its handle
    is dead — the engine recycles the object for a future ``at``, so a
    stale handle may alias a different pending event.
    """

    __slots__ = ("time_s", "seq", "callback", "args", "cancelled")

    def __init__(self, time_s: float, seq: int,
                 callback: Callable, args: tuple):
        self.time_s = time_s
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time_s != other.time_s:
            return self.time_s < other.time_s
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time_s:.6f} seq={self.seq}{state}>"


class EventEngine:
    """A deterministic discrete-event scheduler on the virtual clock.

    Example::

        engine = EventEngine()
        engine.at(1.0, lambda: engine.at(2.0, done))
        engine.run()          # fires both; engine.now == 2.0

    Attributes:
        now: Current virtual time — the time of the event being (or
            last) processed.  Starts at 0.0.
        events_processed: Events fired so far (cancelled events are
            skipped, not counted).
    """

    def __init__(self):
        self.now = 0.0
        self.events_processed = 0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0
        self._cancelled = 0
        self._pool: list[Event] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def at(self, time_s: float, callback: Callable, *args) -> Event:
        """Schedule ``callback(*args)`` at virtual time ``time_s``.

        ``time_s`` may equal :attr:`now` (the event fires after the
        current callback returns, in insertion order among its ties);
        a strictly-past time raises.
        """
        time_s = float(time_s)
        if not time_s >= self.now:  # also catches NaN
            raise ValueError(
                f"cannot schedule at {time_s} (now is {self.now})"
            )
        if time_s == math.inf:
            raise ValueError("cannot schedule at infinity")
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time_s = time_s
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time_s, seq, callback, args)
        self._live += 1
        heapq.heappush(self._heap, (time_s, seq, event))
        return event

    def after(self, delay_s: float, callback: Callable, *args) -> Event:
        """Schedule ``callback(*args)`` ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        return self.at(self.now + delay_s, callback, *args)

    def cancel(self, event: Event) -> None:
        """Tombstone a scheduled event (idempotent).

        The entry stays in the heap and is discarded when popped —
        O(1) now, amortized against the pop it would have cost anyway.
        The callback and its arguments are dropped immediately (a
        tombstone must not pin the requests a cancelled dispatch
        closure captured), and once tombstones outnumber live events
        the heap is compacted in one pass.
        """
        if not event.cancelled:
            event.cancelled = True
            event.callback = None
            event.args = ()
            self._live -= 1
            self._cancelled += 1
            if (self._cancelled > self._live
                    and self._cancelled >= _COMPACT_MIN):
                self._compact()

    def _compact(self) -> None:
        """Drop every tombstone from the heap in one filter+heapify.

        The surviving entries keep their ``(time_s, seq)`` keys, so the
        rebuilt heap pops in exactly the order the lazy path would
        have — compaction is invisible to the simulation.  The heap
        list is mutated in place: ``run``/``step`` hold a local alias
        across callbacks (which may cancel and trigger compaction
        mid-run), and rebinding would strand them on a stale list.
        """
        pool = self._pool
        heap = self._heap
        live: list[tuple[float, int, Event]] = []
        for entry in heap:
            event = entry[2]
            if event.cancelled:
                if len(pool) < _POOL_MAX:
                    pool.append(event)
            else:
                live.append(entry)
        heapq.heapify(live)
        heap[:] = live
        self._cancelled = 0

    def peek(self) -> tuple[float, int] | None:
        """The next live event's ``(time_s, seq)`` key, or ``None``.

        Tombstones encountered at the top of the heap are dropped (the
        same lazy sweep ``run`` performs), so the answer is exact.  The
        cluster fast path uses this to decide whether any event fires
        before the next arrival — if not, consecutive arrivals are
        processed inline without a heap round-trip each.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                self._recycle(event)
                continue
            return entry[0], entry[1]
        return None

    @property
    def pending(self) -> int:
        """Live (non-cancelled, not-yet-fired) events.

        This counts *live* events only; cancelled entries awaiting
        removal are tracked separately in an internal tombstone counter
        and compacted away once they outnumber the live events, so the
        heap's physical size stays O(pending).
        """
        return self._live

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _recycle(self, event: Event) -> None:
        event.cancelled = True  # dead handle: cancel() becomes a no-op
        event.callback = None
        event.args = ()
        if len(self._pool) < _POOL_MAX:
            self._pool.append(event)

    def step(self) -> bool:
        """Fire the single earliest live event; ``False`` when empty."""
        heap = self._heap
        while heap:
            time_s, _, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                self._recycle(event)
                continue
            self._live -= 1
            self.now = time_s
            self.events_processed += 1
            callback = event.callback
            args = event.args
            self._recycle(event)
            callback(*args)
            return True
        return False

    def run(self, until_s: float | None = None,
            max_events: int | None = None) -> int:
        """Fire events in ``(time, seq)`` order; returns events fired.

        Args:
            until_s: Stop *before* any event strictly later than this
                time (the event stays scheduled and ``now`` does not
                pass ``until_s``).
            max_events: Safety bound on events fired by this call;
                raises :class:`RuntimeError` when exceeded (a runaway
                self-rescheduling loop, not a normal exit).
        """
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heappop(heap)
                self._cancelled -= 1
                self._recycle(event)
                continue
            if until_s is not None and entry[0] > until_s:
                break
            if max_events is not None and fired >= max_events:
                raise RuntimeError(
                    f"event budget exhausted after {fired} events at "
                    f"t={self.now:.6f}"
                )
            heappop(heap)
            self._live -= 1
            self.now = entry[0]
            self.events_processed += 1
            callback = event.callback
            args = event.args
            self._recycle(event)
            callback(*args)
            fired += 1
        return fired
