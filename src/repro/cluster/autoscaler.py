"""Reactive device autoscaling as engine events.

The :class:`Autoscaler` is a control loop evaluated every
``interval_s`` of *virtual* time (one engine event per tick).  Each
tick reads two signals across the fleet:

- **queue depth** — the deepest replica admission queue right now;
- **windowed deadline-miss rate** — misses over served requests since
  the previous tick, from cumulative :class:`ServeReport` counters
  (no per-request bookkeeping).

Scale-up trips when either signal is high for ``up_streak``
consecutive ticks (hysteresis) and the cooldown has elapsed; the new
device joins the deepest-queued replica only after the modeled
``provision_s`` lead time — the scheduler charges provisioning latency
as a future engine event, exactly like a cloud instance spin-up.
Scale-down requires *both* signals low for ``down_streak`` ticks and
retires the emptiest replica's highest device, never below
``min_devices`` per replica.  Every decision lands in the scaling log
(:class:`ScalingEvent`) that the cluster report publishes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Autoscaler", "AutoscalerConfig", "ScalingEvent"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop knobs.

    Attributes:
        interval_s: Virtual seconds between control ticks.
        queue_high: Deepest-queue threshold that votes for scale-up.
        queue_low: Deepest-queue bound under which a tick votes for
            scale-down.
        miss_high: Windowed deadline-miss rate that votes for scale-up.
        miss_low: Windowed miss rate under which a tick votes for
            scale-down.
        up_streak: Consecutive hot ticks required before scaling up.
        down_streak: Consecutive cold ticks required before scaling
            down (the asymmetry is deliberate: scale up fast, scale
            down carefully).
        cooldown_s: Minimum virtual time between scaling actions.
        provision_s: Modeled lead time between a scale-up decision and
            the device coming online.
        max_devices: Fleet-wide ceiling on devices (pending
            provisions count toward it).
        min_devices: Per-replica floor scale-down must respect.
    """

    interval_s: float = 1.0
    queue_high: int = 64
    queue_low: int = 4
    miss_high: float = 0.05
    miss_low: float = 0.01
    up_streak: int = 2
    down_streak: int = 5
    cooldown_s: float = 5.0
    provision_s: float = 2.0
    max_devices: int = 64
    min_devices: int = 1

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(
                f"interval_s must be > 0, got {self.interval_s}"
            )
        if self.queue_low > self.queue_high:
            raise ValueError(
                f"queue_low {self.queue_low} must not exceed "
                f"queue_high {self.queue_high}"
            )
        if self.miss_low > self.miss_high:
            raise ValueError(
                f"miss_low {self.miss_low} must not exceed "
                f"miss_high {self.miss_high}"
            )
        if self.up_streak < 1 or self.down_streak < 1:
            raise ValueError("streaks must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if self.provision_s < 0:
            raise ValueError(
                f"provision_s must be >= 0, got {self.provision_s}"
            )
        if self.min_devices < 1:
            raise ValueError(
                f"min_devices must be >= 1, got {self.min_devices}"
            )
        if self.max_devices < self.min_devices:
            raise ValueError(
                f"max_devices {self.max_devices} must be >= "
                f"min_devices {self.min_devices}"
            )


@dataclass(frozen=True)
class ScalingEvent:
    """One entry in the scaling log.

    Attributes:
        time_s: Virtual time of the decision (or commit).
        action: ``"scale_up"`` (decision), ``"device_online"``
            (provision commit), or ``"scale_down"``.
        replica: Target replica index.
        device: Pool device index (``-1`` for a not-yet-provisioned
            scale-up decision).
        queue_depth: Deepest queue at decision time.
        miss_rate: Windowed miss rate at decision time.
    """

    time_s: float
    action: str
    replica: int
    device: int
    queue_depth: int
    miss_rate: float

    def summary(self) -> dict:
        """JSON-ready log row."""
        return {
            "time_s": self.time_s,
            "action": self.action,
            "replica": self.replica,
            "device": self.device,
            "queue_depth": self.queue_depth,
            "miss_rate": self.miss_rate,
        }


class Autoscaler:
    """Drives elastic device capacity for a running cluster.

    Args:
        config: The control-loop knobs.
        replicas: The cluster's :class:`~repro.cluster.replica.Replica`
            actors (signals are read from them; devices are added and
            retired through them).
        engine: The shared event engine.
        still_serving: Zero-arg predicate — ticks reschedule only while
            it returns True, so the engine can drain once the trace is
            done.
        metrics: Optional registry for ``cluster.scale_*`` counters and
            the ``cluster.devices`` gauge.
    """

    def __init__(self, config: AutoscalerConfig, replicas, engine,
                 still_serving, metrics=None):
        self.config = config
        self.replicas = list(replicas)
        self.engine = engine
        self.still_serving = still_serving
        self.metrics = metrics
        self.events: list[ScalingEvent] = []
        self._prev_misses = [0] * len(self.replicas)
        self._prev_served = [0] * len(self.replicas)
        self._hot_ticks = 0
        self._cold_ticks = 0
        self._last_action_s = -math.inf
        self._pending = 0

    def start(self) -> None:
        """Schedule the first control tick."""
        self.engine.at(self.engine.now + self.config.interval_s,
                       self._tick)

    # ------------------------------------------------------------------

    def _serviceable_devices(self) -> int:
        total = 0
        for replica in self.replicas:
            total += len(replica.server.pool.healthy_indices())
        return total

    def _window_miss_rate(self) -> float:
        """Misses over served since the last tick, fleet-wide."""
        misses = 0
        served = 0
        for index, replica in enumerate(self.replicas):
            report = replica.report
            # served counts finalize late; completions = recorded
            # latencies, tracked via the latency tracker's count.
            done = len(report.latency)
            misses += report.deadline_misses - self._prev_misses[index]
            served += done - self._prev_served[index]
            self._prev_misses[index] = report.deadline_misses
            self._prev_served[index] = done
        return misses / served if served > 0 else 0.0

    def _tick(self) -> None:
        config = self.config
        now = self.engine.now
        depths = [len(replica.queue) for replica in self.replicas]
        deepest = max(depths)
        miss_rate = self._window_miss_rate()
        hot = deepest > config.queue_high or miss_rate > config.miss_high
        cold = (deepest < config.queue_low
                and miss_rate < config.miss_low)
        self._hot_ticks = self._hot_ticks + 1 if hot else 0
        self._cold_ticks = self._cold_ticks + 1 if cold else 0
        cooled = now - self._last_action_s >= config.cooldown_s

        if (hot and self._hot_ticks >= config.up_streak and cooled
                and (self._serviceable_devices() + self._pending
                     < config.max_devices)):
            target = depths.index(deepest)
            self._pending += 1
            self.engine.at(now + config.provision_s,
                           self._commit_add, target)
            self._record(ScalingEvent(now, "scale_up", target, -1,
                                      deepest, miss_rate))
            self._last_action_s = now
            self._hot_ticks = 0
        elif (cold and self._cold_ticks >= config.down_streak
              and cooled and self._pending == 0):
            target = self._retire_target()
            if target is not None:
                replica_index, device_index = target
                self.replicas[replica_index].retire_device(device_index)
                self._record(ScalingEvent(now, "scale_down",
                                          replica_index, device_index,
                                          deepest, miss_rate))
                self._last_action_s = now
                self._cold_ticks = 0

        if self.still_serving():
            self.engine.at(now + config.interval_s, self._tick)

    def _commit_add(self, replica_index: int) -> None:
        self._pending -= 1
        device_index = self.replicas[replica_index].add_device()
        self._record(ScalingEvent(self.engine.now, "device_online",
                                  replica_index, device_index,
                                  len(self.replicas[replica_index].queue),
                                  0.0))

    def _retire_target(self) -> tuple[int, int] | None:
        """The emptiest replica still above the device floor, and its
        highest-index healthy device."""
        best = None
        for index, replica in enumerate(self.replicas):
            healthy = replica.server.pool.healthy_indices()
            if len(healthy) <= self.config.min_devices:
                continue
            depth = len(replica.queue)
            if best is None or depth < best[0]:
                best = (depth, index, healthy[-1])
        if best is None:
            return None
        return best[1], best[2]

    def _record(self, event: ScalingEvent) -> None:
        self.events.append(event)
        metrics = self.metrics
        if metrics is not None:
            if event.action == "scale_up":
                metrics.counter("cluster.scale_ups").inc()
            elif event.action == "scale_down":
                metrics.counter("cluster.scale_downs").inc()
            metrics.gauge("cluster.devices").set(
                self._serviceable_devices()
            )
