"""Domain-separated child seeds for cluster simulations.

A cluster run owns many independent random streams: each tenant's
arrival process, each tenant's payload distribution, each replica's
failure schedule.  Deriving them as ``seed + i`` has two classic
failure modes:

- **Cross-domain collision** — tenant 1's arrival stream and replica
  1's failure stream share a seed and are perfectly correlated.
- **Index shift** — allocating sequentially across domains (tenants
  first, then replicas) means *adding a tenant renumbers every replica
  seed*, so an unrelated configuration change silently changes every
  stream after it.

:func:`child_seed` fixes both with :class:`numpy.random.SeedSequence`
spawn keys: the child for ``(domain, index)`` is a pure function of the
root seed and that key, statistically independent of every other key,
and **stable under any change to the rest of the configuration** —
tenant 3's streams are bit-identical whether the cluster has 4 tenants
or 40, 1 replica or 8.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DOMAIN_ARRIVALS",
    "DOMAIN_FAILURES",
    "DOMAIN_PAYLOAD",
    "DOMAIN_THINNING",
    "child_seed",
    "child_rng",
]

# Spawn-key domains.  Values are part of the determinism contract:
# changing one changes every stream in that domain.
DOMAIN_ARRIVALS = 0
DOMAIN_PAYLOAD = 1
DOMAIN_FAILURES = 2
DOMAIN_THINNING = 3


def child_seed(seed: int | None, domain: int,
               index: int) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` for ``(domain, index)``.

    Children are independent across ``(domain, index)`` pairs and
    stable: the same root seed and key always yield the same child, no
    matter how many other children exist.

    Args:
        seed: Root entropy (``None`` draws OS entropy — only for
            explicitly non-reproducible runs).
        domain: One of the ``DOMAIN_*`` constants (any int works; the
            constants just keep call sites collision-free).
        index: Entity index within the domain (tenant 2, replica 0...).
    """
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    return np.random.SeedSequence(entropy=seed,
                                  spawn_key=(domain, index))


def child_rng(seed: int | None, domain: int,
              index: int) -> np.random.Generator:
    """A :class:`~numpy.random.Generator` over :func:`child_seed`."""
    return np.random.default_rng(child_seed(seed, domain, index))
