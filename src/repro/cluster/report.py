"""The fleet-level result: per-replica reports aggregated exactly.

:class:`ClusterReport` composes the per-replica
:class:`~repro.serving.server.ServeReport` objects a cluster run
produced.  Latency percentiles are **exact**, not approximated:
:meth:`LatencyTracker.merge_all
<repro.observability.metrics.LatencyTracker.merge_all>` concatenates
the underlying observations, so the fleet p99 is the nearest-rank p99
of the union — identical to what a single tracker over every request
would report (no bucketing, no sketches; the property test in
``tests/cluster/test_report.py`` pins this against a pooled baseline).

Per-tenant SLA attainment comes from the replicas' per-request columns
(arrival, deadline, tenant): a request attains its SLA when it was
served and its completion (arrival + latency) met its deadline;
dropped requests count against attainment — shedding load is an SLA
failure from the tenant's point of view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.autoscaler import ScalingEvent
from repro.cluster.traffic import TenantSpec
from repro.observability.metrics import LatencyTracker
from repro.observability.trace import Tracer
from repro.serving.server import ServeReport

__all__ = ["ClusterReport", "tenant_stats"]


def tenant_stats(tenants: list[TenantSpec], replicas) -> list[dict]:
    """Per-tenant accounting across every replica's request columns.

    Args:
        tenants: The run's tenant specs (tenant id = list index).
        replicas: Finalized :class:`~repro.cluster.replica.Replica`
            actors (their ``tenants``/``arrivals``/``deadlines``
            columns and report rows are read).
    """
    stats = []
    for index, spec in enumerate(tenants):
        submitted = 0
        served = 0
        misses = 0
        latency = LatencyTracker()
        for replica in replicas:
            mask = replica.tenants == index
            if not mask.any():
                continue
            submitted += int(mask.sum())
            latencies = replica.report.latencies[mask]
            done = ~np.isnan(latencies)
            served += int(done.sum())
            completions = replica.arrivals[mask][done] + latencies[done]
            misses += int(
                (completions > replica.deadlines[mask][done]).sum()
            )
            latency.record_many(latencies[done])
        attained = served - misses
        stats.append({
            "name": spec.name,
            "deadline_s": spec.deadline_s,
            "requests": submitted,
            "served": served,
            "dropped": submitted - served,
            "deadline_misses": misses,
            "sla_attainment": (attained / submitted if submitted else 0.0),
            "latency": latency.summary(),
        })
    return stats


@dataclass
class ClusterReport:
    """Everything one cluster run produced.

    Attributes:
        policy: Router policy the run used.
        seed: Root seed of the traffic superposition.
        replica_reports: Per-replica serving reports, by replica index.
        routed_counts: Requests routed to each replica.
        tenants: Per-tenant stat rows (see :func:`tenant_stats`).
        scaling_events: The autoscaler's decision log (empty for a
            static fleet).
        device_seconds: Total device-online seconds across the fleet —
            the provisioning bill (late-added devices charge from the
            moment they come online, retired ones stop at retirement).
        makespan_s: Virtual time of the last completion fleet-wide.
        latency: Exact merged latency distribution over every served
            request.
        trace: Cluster-level span trace (``None`` unless tracing).
    """

    policy: str
    seed: int | None
    replica_reports: list[ServeReport]
    routed_counts: list[int]
    tenants: list[dict] = field(default_factory=list)
    scaling_events: list[ScalingEvent] = field(default_factory=list)
    device_seconds: float = 0.0
    makespan_s: float = 0.0
    latency: LatencyTracker = field(default_factory=LatencyTracker)
    trace: Tracer | None = None

    @property
    def num_requests(self) -> int:
        """Requests routed fleet-wide."""
        return sum(r.num_requests for r in self.replica_reports)

    @property
    def served(self) -> int:
        """Requests that received a prediction."""
        return sum(r.served for r in self.replica_reports)

    @property
    def dropped(self) -> int:
        """Requests rejected by replica admission control."""
        return sum(r.dropped for r in self.replica_reports)

    @property
    def deadline_misses(self) -> int:
        """Served requests that finished past their deadline."""
        return sum(r.deadline_misses for r in self.replica_reports)

    @property
    def drop_rate(self) -> float:
        """Fraction of routed requests dropped."""
        total = self.num_requests
        return self.dropped / total if total else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of served requests that missed their deadline."""
        served = self.served
        return self.deadline_misses / served if served else 0.0

    @property
    def throughput(self) -> float:
        """Served requests per virtual second, fleet-wide."""
        if self.makespan_s <= 0:
            return 0.0
        return self.served / self.makespan_s

    @property
    def num_replicas(self) -> int:
        """Replica count the run finished with."""
        return len(self.replica_reports)

    @property
    def energy_j(self) -> float:
        """Fleet-wide modeled joules (sum of per-device energy)."""
        return sum(sum(r.device_energy_j) for r in self.replica_reports)

    def summary(self) -> dict:
        """Machine-readable fleet report (``repro.cluster/1``)."""
        return {
            "schema": "repro.cluster/1",
            "policy": self.policy,
            "seed": self.seed,
            "num_replicas": self.num_replicas,
            "num_requests": self.num_requests,
            "served": self.served,
            "dropped": self.dropped,
            "drop_rate": self.drop_rate,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "throughput_rps": self.throughput,
            "makespan_s": self.makespan_s,
            "device_seconds": self.device_seconds,
            "energy_j": self.energy_j,
            "routed": list(self.routed_counts),
            "latency": self.latency.summary(),
            "replicas": [
                {
                    "num_requests": report.num_requests,
                    "served": report.served,
                    "dropped": report.dropped,
                    "deadline_misses": report.deadline_misses,
                    "num_batches": report.num_batches,
                    "devices": len(report.device_busy_seconds),
                    "utilization": report.utilization,
                    "makespan_s": report.makespan_s,
                    "energy_j": sum(report.device_energy_j),
                }
                for report in self.replica_reports
            ],
            "tenants": list(self.tenants),
            "scaling": [event.summary()
                        for event in self.scaling_events],
        }
