"""The cluster orchestrator: traffic → router → replicas → report.

:class:`Cluster` wires the subsystem together on one
:class:`~repro.cluster.engine.EventEngine`:

- a :class:`~repro.cluster.traffic.MultiTenantTraffic` superposition
  streams requests lazily (one arrival = one engine event, never a
  materialized trace);
- a :class:`~repro.cluster.router.Router` picks the replica for each
  arrival, and the :class:`~repro.cluster.replica.Replica` admits it
  under its own server's admission control;
- an optional :class:`~repro.cluster.autoscaler.Autoscaler` ticks on
  the same engine, adding and retiring devices as load moves;
- when the trace ends every replica flushes, the engine drains, and
  the per-replica reports aggregate into one
  :class:`~repro.cluster.report.ClusterReport`.

Determinism: the traffic is a pure function of the seed (routing never
feeds back into generation), every tie on the engine breaks by
insertion sequence, and all randomness is domain-separated through
:mod:`repro.cluster.seeding` — so a run is bit-reproducible for any
router policy and replica count given one seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.engine import EventEngine
from repro.cluster.replica import Replica
from repro.cluster.report import ClusterReport, tenant_stats
from repro.cluster.router import POLICIES, Router
from repro.cluster.traffic import MultiTenantTraffic, TenantSpec
from repro.config import ServeConfig
from repro.edgetpu.compiler import CompiledModel
from repro.edgetpu.multidevice import DevicePool
from repro.observability.metrics import LatencyTracker, MetricsRegistry
from repro.observability.trace import Tracer
from repro.runtime.placement import FleetPlacement
from repro.serving.arrivals import Request
from repro.serving.server import InferenceServer

__all__ = ["Cluster", "ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster serving run, fully specified.

    Attributes:
        tenants: The tenant workload mix (at least one
            :class:`~repro.cluster.traffic.TenantSpec`).
        total_requests: Requests routed across the whole run.
        num_replicas: Replica servers behind the router.
        devices_per_replica: Devices in each replica's pool at start.
        policy: Router policy (one of
            :data:`repro.cluster.router.POLICIES`).
        serve: Default per-replica serving config.  Under the
            ``tenant_affinity`` policy a tenant's own
            :attr:`TenantSpec.config` overrides it on the tenant's
            home replica.
        seed: Root seed for the traffic superposition (tenant streams
            derive via domain-separated child seeds).
        autoscaler: Autoscaler knobs; ``None`` runs a static fleet.
        tracing: Record cluster-level spans (the root serve span and
            every scaling action — per-request spans stay off at fleet
            scale).
        max_events: Safety bound forwarded to
            :meth:`EventEngine.run`; ``None`` is unbounded.
        placement: A
            :class:`~repro.runtime.placement.FleetPlacement` (from
            :meth:`PlacementOptimizer.place
            <repro.runtime.placement.PlacementOptimizer.place>`)
            turning the cluster into a heterogeneous fleet: one replica
            per decision, each with the decision's backend, device
            count, compiled variant and batch bucket, and the router
            pinning every tenant to its decided replica.  Requires
            ``policy="placed"`` (and vice versa); ``num_replicas`` /
            ``devices_per_replica`` are derived from the decisions.
        fast: Use the vectorized simulation fast path
            (:mod:`repro.cluster.fastpath`) when the run is eligible —
            chunked traffic, batched routing, columnar bookkeeping and
            deferred predictions, bit-identical to the scalar path.
            Runs the fast path cannot express (``least_queue`` routing,
            mixed tenant feature widths) fall back to the scalar pump
            automatically; ``False`` forces the scalar pump (the
            equivalence oracle).
    """

    tenants: tuple[TenantSpec, ...]
    total_requests: int = 10_000
    num_replicas: int = 2
    devices_per_replica: int = 1
    policy: str = "round_robin"
    serve: ServeConfig = field(default_factory=ServeConfig)
    seed: int | None = 0
    autoscaler: AutoscalerConfig | None = None
    tracing: bool = False
    max_events: int | None = None
    fast: bool = True
    placement: FleetPlacement | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.tenants:
            raise ValueError("at least one tenant is required")
        for spec in self.tenants:
            if not isinstance(spec, TenantSpec):
                raise TypeError(
                    f"tenants must be TenantSpec, "
                    f"got {type(spec).__name__}"
                )
        if self.total_requests < 1:
            raise ValueError(
                f"total_requests must be >= 1, "
                f"got {self.total_requests}"
            )
        if self.num_replicas < 1:
            raise ValueError(
                f"num_replicas must be >= 1, got {self.num_replicas}"
            )
        if self.devices_per_replica < 1:
            raise ValueError(
                f"devices_per_replica must be >= 1, "
                f"got {self.devices_per_replica}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if not isinstance(self.serve, ServeConfig):
            raise TypeError(
                f"serve must be a ServeConfig, "
                f"got {type(self.serve).__name__}"
            )
        if (self.autoscaler is not None
                and not isinstance(self.autoscaler, AutoscalerConfig)):
            raise TypeError(
                f"autoscaler must be an AutoscalerConfig or None, "
                f"got {type(self.autoscaler).__name__}"
            )
        if self.placement is not None:
            if not isinstance(self.placement, FleetPlacement):
                raise TypeError(
                    f"placement must be a FleetPlacement or None, "
                    f"got {type(self.placement).__name__}"
                )
            if self.policy != "placed":
                raise ValueError(
                    "placement= requires policy='placed' "
                    f"(got {self.policy!r})"
                )
            placed = {d.tenant for d in self.placement.decisions}
            names = {spec.name for spec in self.tenants}
            if placed != names:
                raise ValueError(
                    f"placement covers tenants {sorted(placed)} but the "
                    f"config lists {sorted(names)}"
                )
            # The fleet shape is the optimizer's answer, not a knob.
            object.__setattr__(self, "num_replicas",
                               len(self.placement.decisions))
        elif self.policy == "placed":
            raise ValueError(
                "the placed policy needs placement= (a FleetPlacement "
                "from PlacementOptimizer.place)"
            )


class Cluster:
    """A router, N replica servers and (optionally) an autoscaler on
    one event engine.

    Args:
        compiled: The model every replica serves (replicated onto each
            replica's own pool).
        config: The run specification.
        tiers: Optional compression tier ladder
            (:class:`~repro.compression.tiers.TierSet`); each replica
            gets the ladder co-resident and sheds under its serve
            config's policy, exactly like a single tiered server.
        metrics: Shared registry; replicas write their ``serve.*``
            instruments into it (aggregating across the fleet) and the
            cluster adds ``cluster.*``.
        tracer: Cluster-level tracer (overrides ``config.tracing``).
    """

    def __init__(self, compiled: CompiledModel, config: ClusterConfig,
                 tiers=None, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None):
        self.config = config
        self.metrics = metrics
        if tracer is None and config.tracing:
            tracer = Tracer(enabled=True)
        self.tracer = tracer
        self.engine = EventEngine()
        self.replicas: list[Replica] = []
        tier_list = list(tiers) if tiers is not None else None
        placement = config.placement
        for index in range(config.num_replicas):
            if placement is not None:
                # One replica per optimizer decision: the decided
                # backend, device share, compiled variant and bucket.
                decision = placement.decisions[index]
                pool = DevicePool(decision.devices, decision.arch)
                pool.load_replicated(decision.compiled)
                serve_config = replace(self._replica_config(index),
                                       max_batch=decision.bucket)
            else:
                pool = DevicePool(config.devices_per_replica,
                                  compiled.arch)
                pool.load_replicated(compiled)
                serve_config = self._replica_config(index)
            server = InferenceServer(
                pool, config=serve_config,
                tiers=tier_list, metrics=metrics,
            )
            replica = Replica(server, self.engine, replica_id=index)
            replica.open()
            self.replicas.append(replica)
        tenant_map = None
        if placement is not None:
            by_name = {decision.tenant: index
                       for index, decision in
                       enumerate(placement.decisions)}
            tenant_map = {index: by_name[spec.name]
                          for index, spec in enumerate(config.tenants)}
        self.router = Router(self.replicas, config.policy,
                             tenant_map=tenant_map)
        self.autoscaler = None
        if config.autoscaler is not None:
            self.autoscaler = Autoscaler(
                config.autoscaler, self.replicas, self.engine,
                still_serving=self._still_serving, metrics=metrics,
            )
        traffic = MultiTenantTraffic(
            config.tenants, config.total_requests, seed=config.seed,
        )
        self._traffic = None
        self._pump = None
        if config.fast and self._fast_eligible(traffic):
            from repro.cluster.fastpath import (
                DeferredPredictions,
                FastArrivalPump,
            )
            # Latency bookkeeping can defer too when nothing reads
            # per-request report state mid-run: the autoscaler polls
            # miss rates, a metrics registry records per batch, and
            # tier ladders keep per-tier columns.
            full = (config.autoscaler is None and metrics is None
                    and tier_list is None)
            for replica in self.replicas:
                replica.enable_fast(DeferredPredictions(full=full))
            self._pump = FastArrivalPump(self, traffic)
        else:
            self._traffic = traffic.requests()
        self._traffic_done = False
        self._ran = False
        self._root = None

    def _fast_eligible(self, traffic: MultiTenantTraffic) -> bool:
        """Whether this run can take the vectorized fast path.

        ``least_queue`` routes on queue depths that every pick mutates
        (no chunk form), mixed feature widths have no columnar chunks,
        and a non-stock batcher has no inline trigger.
        """
        from repro.serving.batcher import DynamicBatcher, FixedSizeBatcher
        if self.config.policy == "least_queue":
            return False
        if not traffic._uniform_width:
            return False
        return all(
            type(replica.server.batcher) in (DynamicBatcher,
                                             FixedSizeBatcher)
            for replica in self.replicas
        )

    def _replica_config(self, index: int) -> ServeConfig:
        """The serve config replica ``index`` runs under.

        ``tenant_affinity`` pins tenant *t* to replica ``t % N``, so a
        tenant-supplied config applies to its home replica (first such
        tenant wins when several share one home).
        """
        config = self.config
        if config.policy == "tenant_affinity":
            for tenant_index, spec in enumerate(config.tenants):
                if (tenant_index % config.num_replicas == index
                        and spec.config is not None):
                    return spec.config
        return config.serve

    # ------------------------------------------------------------------

    def _still_serving(self) -> bool:
        if not self._traffic_done:
            return True
        return any(replica.queue or replica._dispatch_event is not None
                   for replica in self.replicas)

    def _schedule_next_traffic(self) -> None:
        try:
            request = next(self._traffic)
        except StopIteration:
            self._traffic_done = True
            for replica in self.replicas:
                replica.end_of_trace()
            return
        self.engine.at(max(self.engine.now, request.arrival_s),
                       self._on_traffic, request)

    def _on_traffic(self, request: Request) -> None:
        # Next arrival before any dispatch reschedule (inside submit),
        # preserving the engine-wide arrivals-win-ties discipline.
        self._schedule_next_traffic()
        index = self.router.route(request)
        if self.metrics is not None:
            self.metrics.counter("cluster.routed").inc()
        self.replicas[index].submit(request)

    # ------------------------------------------------------------------

    def run(self) -> ClusterReport:
        """Serve the whole trace; returns the aggregated report."""
        if self._ran:
            raise RuntimeError("cluster already ran; build a fresh one")
        self._ran = True
        config = self.config
        tracer = self.tracer
        if tracer is not None:
            self._root = tracer.add(
                "cluster.serve", 0.0, 0.0, policy=config.policy,
                replicas=config.num_replicas,
                tenants=len(config.tenants),
                requests=config.total_requests,
            )
        if self.metrics is not None:
            self.metrics.gauge("cluster.replicas").set(
                config.num_replicas
            )
            self.metrics.gauge("cluster.devices").set(
                sum(len(r.server.pool.healthy_indices())
                    for r in self.replicas)
            )
        if self._pump is not None:
            self._pump.start()
        else:
            self._schedule_next_traffic()
        if self.autoscaler is not None:
            self.autoscaler.start()
        self.engine.run(max_events=config.max_events)
        # Deferred work replays before finalize: the makespan reads the
        # latency column the full-deferred bookkeeping fills in.
        for replica in self.replicas:
            replica.resolve_deferred()
        reports = [replica.finalize() for replica in self.replicas]
        makespan = max((r.makespan_s for r in reports), default=0.0)
        scaling = (list(self.autoscaler.events)
                   if self.autoscaler is not None else [])
        if tracer is not None:
            for event in scaling:
                tracer.add(f"cluster.{event.action}", event.time_s,
                           event.time_s, parent_id=self._root,
                           tags=("scaling",), replica=event.replica,
                           device=event.device)
            tracer.finish(self._root, makespan)
            tracer.advance(makespan)
        report = ClusterReport(
            policy=config.policy,
            seed=config.seed,
            replica_reports=reports,
            routed_counts=list(self.router.routed_counts),
            tenants=tenant_stats(list(config.tenants), self.replicas),
            scaling_events=scaling,
            device_seconds=sum(
                replica.device_seconds(makespan)
                for replica in self.replicas
            ),
            makespan_s=makespan,
            latency=LatencyTracker.merge_all(
                [r.latency for r in reports]
            ),
            trace=(tracer if tracer is not None and tracer.enabled
                   else None),
        )
        return report
