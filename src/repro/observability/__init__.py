"""Structured observability: span tracing, metrics, trace exporters.

The paper's contribution is a *cost breakdown* — encode vs. update vs.
modelgen vs. inference (Fig. 5/6).  This package generalizes that
breakdown from four flat totals to a full trace of the modeled
execution:

- :mod:`repro.observability.trace` — :class:`Tracer` records
  hierarchical :class:`Span` intervals on the virtual clock
  (``pipeline.train > submodel[3] > encode > device.invoke``), each
  carrying phase, device id, batch size, byte counts and
  cache-hit/fallback/retry tags.  Disabled tracing is zero-overhead on
  the modeled clock; enabled tracing changes no modeled second and no
  prediction (the determinism suite asserts both).
- :mod:`repro.observability.metrics` — :class:`MetricsRegistry` of
  named counters/gauges/histograms, with
  :class:`~repro.runtime.profiler.LatencyTracker` as the one histogram
  primitive.
- :mod:`repro.observability.export` — JSON-lines archive, Chrome
  ``trace_event`` for ``about://tracing``/Perfetto, and a text
  flamegraph.

:class:`~repro.runtime.profiler.PhaseProfiler` is a thin view over a
:class:`Tracer`'s phase clock, so every existing phase total flows
through here bit-identically.
"""

from repro.observability.export import (
    flamegraph,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    LatencyTracker,
    MetricsRegistry,
)
from repro.observability.trace import Span, Tracer, format_seconds

__all__ = [
    "Counter",
    "Gauge",
    "LatencyTracker",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "flamegraph",
    "format_seconds",
    "read_jsonl",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
