"""Trace exporters: JSON-lines, Chrome ``trace_event``, text flamegraph.

Three consumers, three formats:

- :func:`to_jsonl` / :func:`read_jsonl` — one span per line, loss-less
  round trip; the machine-readable archive format (and the schema the
  determinism suite asserts on).
- :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON that
  ``about://tracing`` / Perfetto render: complete (``"ph": "X"``)
  events with microsecond timestamps, one track per device plus a host
  track, so device overlap is visible on real serving traces.
- :func:`flamegraph` — an aggregated text tree (span paths merged by
  name, durations summed, call counts shown); the quick look that
  replaces nothing but answers "where did the modeled time go" without
  leaving the terminal.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.observability.trace import Span, Tracer, format_seconds

__all__ = [
    "flamegraph",
    "read_jsonl",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]


def _spans(trace: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(trace, Tracer):
        return list(trace.spans)
    return list(trace)


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------

def to_jsonl(trace: Tracer | Iterable[Span]) -> str:
    """Serialize spans as newline-delimited JSON (one span per line)."""
    return "\n".join(
        json.dumps(span.to_dict(), sort_keys=True) for span in _spans(trace)
    )


def write_jsonl(trace: Tracer | Iterable[Span], path) -> int:
    """Write :func:`to_jsonl` output to ``path``; returns span count."""
    spans = _spans(trace)
    with open(path, "w", encoding="utf-8") as handle:
        text = to_jsonl(spans)
        if text:
            handle.write(text + "\n")
    return len(spans)


def read_jsonl(source) -> list[Span]:
    """Parse spans back from JSONL text or a file path.

    Accepts either a string of newline-delimited JSON or a path-like;
    the round trip ``read_jsonl(to_jsonl(t)) == t.spans`` is exact.
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = str(source)
        if text.strip() and "\n" not in text \
                and not text.lstrip().startswith("{"):
            with open(text, encoding="utf-8") as handle:
                text = handle.read()
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Chrome trace_event format
# ----------------------------------------------------------------------

def _track(span: Span) -> tuple[int, str]:
    """Map a span to a (tid, track name) pair.

    Device spans get one track per device index (overlap across devices
    stays visible); everything else renders on the host track.
    """
    device = span.attrs.get("device")
    if device is not None:
        return int(device) + 1, f"device {int(device)}"
    return 0, "host"


def to_chrome_trace(trace: Tracer | Iterable[Span]) -> dict:
    """Build a Chrome ``trace_event`` document (JSON-ready dict).

    Every span becomes a complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur`` on the virtual timeline; ``args`` carry
    the span's phase, attrs and tags.  Load the written file in
    ``about://tracing`` or https://ui.perfetto.dev.
    """
    events = []
    tracks: dict[int, str] = {}
    for span in _spans(trace):
        tid, track = _track(span)
        tracks.setdefault(tid, track)
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        if span.phase is not None:
            args["phase"] = span.phase
        if span.attrs:
            args.update(span.attrs)
        if span.tags:
            args["tags"] = list(span.tags)
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": 0,
            "tid": tid,
            "cat": span.phase if span.phase is not None else "span",
            "args": args,
        })
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": track},
        }
        for tid, track in sorted(tracks.items())
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Tracer | Iterable[Span], path) -> int:
    """Write :func:`to_chrome_trace` to ``path``; returns event count."""
    document = to_chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
    return len(document["traceEvents"])


# ----------------------------------------------------------------------
# Text flamegraph
# ----------------------------------------------------------------------

def flamegraph(trace: Tracer | Iterable[Span], *,
               max_depth: int = 8) -> str:
    """Aggregated call-tree summary of a trace.

    Sibling spans with the same name merge into one line (duration
    summed, count shown); children indent under their parent.  Shares
    are relative to the total duration of the root spans, so the tree
    reads like the paper's Fig. 5 breakdown at span granularity.
    """
    spans = _spans(trace)
    if not spans:
        return "(empty trace)"
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    roots = children.get(None, [])
    total = sum(span.duration_s for span in roots)

    lines: list[str] = []

    def emit(group: list[Span], depth: int) -> None:
        if depth >= max_depth:
            return
        merged: dict[str, list[Span]] = {}
        for span in group:
            merged.setdefault(span.name, []).append(span)
        for name, same in merged.items():
            seconds = sum(span.duration_s for span in same)
            share = seconds / total if total else 0.0
            count = f" x{len(same)}" if len(same) > 1 else ""
            label = f"{'  ' * depth}{name}{count}"
            lines.append(
                f"{label:<44} {format_seconds(seconds):>12}  "
                f"({share:5.1%})"
            )
            nested: list[Span] = []
            for span in same:
                nested.extend(children.get(span.span_id, ()))
            if nested:
                emit(nested, depth + 1)

    emit(roots, 0)
    return "\n".join(lines)
