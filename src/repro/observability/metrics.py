"""Named counters, gauges and histograms for the serving layers.

A :class:`MetricsRegistry` is the flat, aggregate companion to the
span-level :class:`~repro.observability.trace.Tracer`: spans answer
"where did this request's time go", metrics answer "how many, how big,
how fast" across the whole run.  :class:`LatencyTracker` — the repo's
one percentile primitive (nearest-rank, exactly reproducible) — lives
here as the histogram implementation, so a metric's p99 and a
:class:`~repro.serving.server.ServeReport` p99 can never disagree
about what a percentile means (:mod:`repro.runtime.profiler`
re-exports it for its original callers).

Everything is deterministic and virtual-clock-valued; there is no
background thread, no sampling, no wall time.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Counter", "Gauge", "LatencyTracker", "MetricsRegistry"]


class LatencyTracker:
    """Records a latency distribution on the virtual clock.

    Percentiles use the nearest-rank definition (the smallest recorded
    value with at least ``p`` percent of the mass at or below it), so a
    reported p99 is always an actually-observed latency and the result
    is exactly reproducible — no interpolation between samples.
    """

    def __init__(self):
        self._values: list[float] = []
        # The cache protocol is "None means invalid"; an empty tracker
        # has nothing cached yet, so it starts invalid too.
        self._sorted: list[float] | None = None

    def record(self, seconds: float) -> None:
        """Add one observation (seconds, must be >= 0)."""
        seconds = float(seconds)
        if not seconds >= 0.0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self._values.append(seconds)
        self._sorted = None

    def record_many(self, values) -> None:
        """Bulk-ingest an iterable/array of observations (all >= 0).

        One validation pass, one extend — the vectorized path the
        cluster report uses to build per-tenant distributions out of a
        million-row latency array without a Python-level loop per
        sample.  A numpy array validates in one ``min`` reduction and
        converts with ``tolist`` (bit-identical to per-element
        ``float``); any other iterable takes the element-wise path.
        """
        if isinstance(values, np.ndarray):
            if len(values) == 0:
                return
            low = np.min(values)
            if not low >= 0.0:  # also catches NaN
                raise ValueError(f"latency must be >= 0, got {low}")
            self._values.extend(values.tolist())
            self._sorted = None
            return
        values = [float(v) for v in values]
        for value in values:
            if not value >= 0.0:
                raise ValueError(f"latency must be >= 0, got {value}")
        if values:
            self._values.extend(values)
            self._sorted = None

    def merge(self, other: "LatencyTracker") -> None:
        """Fold another tracker's observations into this one.

        Concatenate-then-invalidate: the merged tracker reports exactly
        the nearest-rank percentiles a single tracker over the union of
        observations would — the property the cluster report relies on
        to aggregate per-replica distributions without approximation
        (no bucketing, no quantile sketches).  ``other`` is unchanged.
        """
        if other is self:
            raise ValueError("cannot merge a tracker into itself")
        if other._values:
            self._values.extend(other._values)
            self._sorted = None

    @classmethod
    def merge_all(cls, trackers) -> "LatencyTracker":
        """A fresh tracker over the union of ``trackers``' observations.

        Equivalent to recording every underlying observation into one
        tracker, in tracker order; the inputs are unchanged.
        """
        merged = cls()
        for tracker in trackers:
            merged.merge(tracker)
        return merged

    def __len__(self) -> int:
        return len(self._values)

    def _ordered(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            raise ValueError("no latencies recorded")
        ordered = self._ordered()
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th-percentile latency."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th-percentile latency — the SLA metric."""
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        """Arithmetic mean latency."""
        if not self._values:
            raise ValueError("no latencies recorded")
        return sum(self._values) / len(self._values)

    @property
    def max(self) -> float:
        """Worst observed latency."""
        if not self._values:
            raise ValueError("no latencies recorded")
        return self._ordered()[-1]

    def summary(self) -> dict:
        """Machine-readable percentile summary."""
        if not self._values:
            return {"count": 0}
        return {
            "count": len(self._values),
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p95_s": self.p95,
            "p99_s": self.p99,
            "max_s": self.max,
        }


class Counter:
    """A monotonically increasing count.

    Attributes:
        name: Registry key.
        value: Current count.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0 — counters never go down)."""
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, pool size, model version).

    Attributes:
        name: Registry key.
        value: Last set value (``None`` until first set).
        peak: Largest value ever set (``None`` until first set).
    """

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None
        self.peak: float | None = None

    def set(self, value: float) -> None:
        """Record the current value (and track the peak)."""
        value = float(value)
        self.value = value
        self.peak = value if self.peak is None else max(self.peak, value)


class MetricsRegistry:
    """Lazily-created named metrics with one machine-readable summary.

    Example::

        metrics = MetricsRegistry()
        metrics.counter("serve.dropped").inc()
        metrics.histogram("serve.latency_s").record(0.004)
        metrics.summary()

    Instrument names are namespaced by convention
    (``<subsystem>.<what>``, seconds-valued histograms suffixed
    ``_s``) — the catalog lives in ``docs/architecture.md``.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyTracker] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> LatencyTracker:
        """Get or create the histogram ``name`` (a LatencyTracker)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyTracker()
        return histogram

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def summary(self) -> dict:
        """All instruments, keyed by kind then name (sorted)."""
        return {
            "counters": {name: c.value for name, c
                         in sorted(self._counters.items())},
            "gauges": {name: {"value": g.value, "peak": g.peak}
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary() for name, h
                           in sorted(self._histograms.items())},
        }
