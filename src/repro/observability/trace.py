"""Hierarchical span tracing on the virtual clock.

The paper's whole argument is a phase-level cost breakdown (Fig. 5/6),
and the repo's runtimes are virtual-clock readings — so the tracer
records *modeled* time, never wall time.  A :class:`Span` is a named
interval ``[start_s, end_s)`` on that clock, carrying an optional
canonical phase, free-form attributes (device id, batch size, byte
counts) and tags (``cache_hit``, ``fallback``, ``retry``, ``dropped``),
plus a parent link that makes the trace a forest::

    pipeline.train
      submodel[3]
        encode
          device.invoke   device=0 batch=256

Determinism contracts (the load-bearing part):

- **Tracing never touches the modeled clock.**  Recording a span does
  not charge time; phase totals come only from :meth:`Tracer.charge`,
  whose float accumulation order is identical whether the tracer is
  enabled or disabled.  Enabling tracing therefore cannot change a
  single modeled second or prediction.
- **Disabled is (near) zero-overhead.**  A disabled tracer skips all
  span bookkeeping; only the phase clock is maintained, exactly as the
  pre-tracer :class:`~repro.runtime.profiler.PhaseProfiler` did.
- **Worker-order invariance.**  Concurrent tasks record into private
  tracers which :meth:`Tracer.splice` merges *in task order*, the
  same convention the PR 2 parallel layer uses for phase totals — so a
  trace is bit-identical for any worker count or backend.

Two time conventions coexist:

- *Cursor-timed* spans (:meth:`Tracer.charge`, :meth:`Tracer.span`) lay
  work out sequentially on a per-tracer cursor — the natural layout for
  pipeline code that only knows durations.  Concurrent sub-models
  appear serialized in task order (document-stable, not overlapped).
- *Explicitly-timed* spans (:meth:`Tracer.add`) carry real virtual
  event times — the serving event loop and the micro-batch dispatcher
  know exactly when each device started and finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platforms.base import VirtualClock

__all__ = ["Span", "Tracer", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Render a duration with adaptive units (µs / ms / s).

    Sub-microsecond device spans used to print as ``0.000 ms``; the
    unit now follows the magnitude so every span is legible.
    """
    magnitude = abs(seconds)
    if magnitude == 0.0:
        return "0.000 s"
    if magnitude < 1e-3:
        return f"{seconds * 1e6:.3f} µs"
    if magnitude < 1.0:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds:.3f} s"


@dataclass
class Span:
    """One named interval of modeled time.

    Attributes:
        span_id: Tracer-local id, assigned in open order (parents open
            before their children, so ``parent_id < span_id``).
        parent_id: Enclosing span's id, ``None`` for roots.
        name: What ran (``device.invoke``, ``host.tail``, ``request``).
        start_s: Virtual start time.
        end_s: Virtual end time (``>= start_s``).
        phase: Canonical phase label when the span was charged against
            the phase clock (``encode``/``update``/``modelgen``/
            ``inference``), else ``None``.
        attrs: Free-form structured context (``device``, ``batch``,
            ``bytes_in``, ``request_id``, ...).
        tags: Markers (``cache_hit``, ``fallback``, ``retry``,
            ``dropped``, ``deadline_miss``, ``failure``).
    """

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float
    phase: str | None = None
    attrs: dict = field(default_factory=dict)
    tags: tuple = ()

    @property
    def duration_s(self) -> float:
        """Span length in modeled seconds."""
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        """JSON-ready representation (the JSONL exporter's row)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "phase": self.phase,
            "attrs": dict(self.attrs),
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Inverse of :meth:`to_dict` (exporter round-trip)."""
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=(None if payload["parent_id"] is None
                       else int(payload["parent_id"])),
            name=str(payload["name"]),
            start_s=float(payload["start_s"]),
            end_s=float(payload["end_s"]),
            phase=payload.get("phase"),
            attrs=dict(payload.get("attrs", {})),
            tags=tuple(payload.get("tags", ())),
        )


class _NullSpan:
    """No-op handle returned by a disabled tracer's :meth:`Tracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    def tag(self, *tags) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context-manager handle over one open cursor-timed span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def set(self, **attrs) -> None:
        """Attach attributes to the open span."""
        self._span.attrs.update(attrs)

    def tag(self, *tags: str) -> None:
        """Append tags to the open span."""
        self._span.tags = self._span.tags + tags

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Records hierarchical spans and the per-phase modeled-time totals.

    Args:
        enabled: When ``False``, span recording is skipped entirely and
            only the phase clock accumulates — the zero-overhead mode
            every pipeline uses by default.

    Not thread-safe by design: concurrent tasks each record into their
    own tracer and the owner merges them in task order with
    :meth:`splice` (the repo's worker-order-invariance convention).
    Instances are picklable, so process-pool tasks can return them.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self.spans: list[Span] = []
        self._clock = VirtualClock()
        self._stack: list[Span] = []
        self._cursor = 0.0
        self._next_id = 0

    def __bool__(self) -> bool:
        return self.enabled

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    # Phase clock (what PhaseProfiler views)
    # ------------------------------------------------------------------

    @property
    def total_charged(self) -> float:
        """Total modeled seconds charged across phases."""
        return self._clock.elapsed()

    def phase_seconds(self, phase: str) -> float:
        """Seconds charged under ``phase`` (0.0 if never charged)."""
        return self._clock.phase(phase)

    def phase_totals(self) -> dict:
        """A copy of the per-phase totals."""
        return self._clock.phases()

    def charge(self, phase: str, seconds: float, *, name: str | None = None,
               tags: tuple = (), record: bool = True, **attrs) -> None:
        """Charge ``seconds`` to ``phase`` and record a leaf span.

        The clock charge happens unconditionally and in call order, so
        phase totals are bit-identical whether tracing is on or off.
        When enabled (and ``record``), a leaf span named ``name`` (the
        phase name by default) occupies ``[cursor, cursor + seconds)``
        and advances the cursor.  ``record=False`` charges the clock
        only — used when merging a child tracer whose spans are spliced
        separately (a replayed leaf would double-report).
        """
        self._clock.charge(phase, seconds)
        if self.enabled and record:
            span = self._open(name if name is not None else phase,
                              self._cursor, phase=phase, tags=tuple(tags),
                              attrs=attrs)
            self._cursor += seconds
            span.end_s = self._cursor
            self._stack.pop()

    # ------------------------------------------------------------------
    # Span recording
    # ------------------------------------------------------------------

    @property
    def cursor_s(self) -> float:
        """Current position on the cursor timeline."""
        return self._cursor

    def advance(self, seconds: float) -> None:
        """Move the cursor past an explicitly-timed window."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        self._cursor += seconds

    def span(self, name: str, *, phase: str | None = None, tags: tuple = (),
             **attrs):
        """Open a cursor-timed structural span (context manager).

        The span starts at the cursor and ends wherever nested
        :meth:`charge` calls push it.  ``phase`` is a pure label here —
        structural spans never charge the clock (their children do).
        """
        if not self.enabled:
            return _NULL_SPAN
        span = self._open(name, self._cursor, phase=phase,
                          tags=tuple(tags), attrs=attrs)
        return _SpanHandle(self, span)

    def add(self, name: str, start_s: float, end_s: float, *,
            parent_id: int | None = None, phase: str | None = None,
            tags: tuple = (), **attrs) -> int | None:
        """Record an explicitly-timed span; returns its id (or ``None``).

        Used where real virtual event times are known (the serving
        event loop, the micro-batch dispatcher).  Neither charges the
        clock nor moves the cursor.  ``parent_id`` links the span into
        the forest; ``None`` attaches to the currently open structural
        span, if any.
        """
        if not self.enabled:
            return None
        if end_s < start_s:
            raise ValueError(f"span ends ({end_s}) before it starts "
                             f"({start_s})")
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        span = Span(
            span_id=self._next_id, parent_id=parent_id, name=name,
            start_s=start_s, end_s=end_s, phase=phase,
            attrs=attrs, tags=tuple(tags),
        )
        self._next_id += 1
        self.spans.append(span)
        return span.span_id

    def finish(self, span_id: int | None, end_s: float) -> None:
        """Set the end time of a previously :meth:`add`-ed span."""
        if not self.enabled or span_id is None:
            return
        for span in reversed(self.spans):
            if span.span_id == span_id:
                if end_s < span.start_s:
                    raise ValueError(
                        f"span ends ({end_s}) before it starts "
                        f"({span.start_s})"
                    )
                span.end_s = end_s
                return
        raise KeyError(f"no span with id {span_id}")

    def splice(self, child: "Tracer", name: str, *, tags: tuple = (),
               **attrs) -> None:
        """Graft a child tracer's spans under a new wrapper span.

        The child's cursor timeline is shifted to start at this
        tracer's cursor, ids are remapped to stay unique, and the
        wrapper (named ``name``) covers the child's whole extent.
        Splicing children in task order makes the merged trace
        worker-order-invariant.  Phase totals are *not* merged here —
        the profiler replays them with ``charge(record=False)`` so the
        float accumulation order matches the pre-tracer merge exactly.
        """
        if not (self.enabled and child.enabled):
            return
        base = self._cursor
        extent = child._cursor
        if child.spans:
            extent = max(extent, max(s.end_s for s in child.spans))
        parent = self._stack[-1].span_id if self._stack else None
        wrapper = Span(
            span_id=self._next_id, parent_id=parent, name=name,
            start_s=base, end_s=base + extent, attrs=attrs,
            tags=tuple(tags),
        )
        self._next_id += 1
        self.spans.append(wrapper)
        id_map: dict[int, int] = {}
        for span in child.spans:
            new_id = self._next_id
            self._next_id += 1
            id_map[span.span_id] = new_id
            self.spans.append(Span(
                span_id=new_id,
                parent_id=(wrapper.span_id if span.parent_id is None
                           else id_map[span.parent_id]),
                name=span.name,
                start_s=base + span.start_s,
                end_s=base + span.end_s,
                phase=span.phase,
                attrs=dict(span.attrs),
                tags=span.tags,
            ))
        self._cursor = base + extent

    # ------------------------------------------------------------------

    def _open(self, name: str, start_s: float, *, phase: str | None,
              tags: tuple, attrs: dict) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id, parent_id=parent, name=name,
            start_s=start_s, end_s=start_s, phase=phase, attrs=attrs,
            tags=tags,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order"
            )
        span.end_s = max(span.end_s, self._cursor)
        self._stack.pop()
