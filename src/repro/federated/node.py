"""An edge node: local data, shared encoder, local HDC training."""

from __future__ import annotations

import numpy as np

from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.model import HDCClassifier

__all__ = ["EdgeNode"]


class EdgeNode:
    """One participant in a federated HDC deployment.

    All nodes must share the *same* base hypervectors (distribute the
    encoder seed once at setup) — class hypervectors from different
    encoders live in unrelated coordinate systems and cannot be
    averaged.  The node encodes its local data once and caches the
    hypervectors; each round it fine-tunes the freshly received global
    class hypervectors on its local cache.

    Args:
        node_id: Identifier used in reports.
        x: Local samples ``(num_samples, num_features)``.
        y: Local integer labels.
        encoder: The shared :class:`NonlinearEncoder`.
        num_classes: Global class count (local data may miss classes).
        learning_rate: Local update scale.
        seed: Seed for local shuffling.
    """

    def __init__(self, node_id: int, x: np.ndarray, y: np.ndarray,
                 encoder: NonlinearEncoder, num_classes: int,
                 learning_rate: float = 0.035,
                 seed: np.random.Generator | int | None = None):
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        if len(x) == 0:
            raise ValueError(f"node {node_id} has no local data")
        if len(x) != len(y):
            raise ValueError(f"{len(x)} samples but {len(y)} labels")
        self.node_id = node_id
        self.encoder = encoder
        self.num_classes = num_classes
        self.learning_rate = learning_rate
        self._labels = y
        # Encode once; all local rounds reuse the cached hypervectors
        # (on a real deployment this is the Edge TPU encoding pass).
        self._encoded = encoder.encode(x)
        self._rng = seed if isinstance(seed, np.random.Generator) \
            else np.random.default_rng(seed)

    @property
    def num_samples(self) -> int:
        """Local sample count (the aggregation weight)."""
        return len(self._labels)

    def local_classes(self) -> np.ndarray:
        """The class labels present locally (non-IID diagnostics)."""
        return np.unique(self._labels)

    def train(self, global_classes: np.ndarray,
              iterations: int = 2) -> np.ndarray:
        """Fine-tune the global model locally; return updated class HVs.

        Args:
            global_classes: ``(num_classes, dimension)`` global class
                hypervectors received from the server.
            iterations: Local mistake-driven passes.

        Returns:
            The node's updated ``(num_classes, dimension)`` matrix (a
            copy — the input is not modified).
        """
        global_classes = np.asarray(global_classes, dtype=np.float32)
        if global_classes.shape != (self.num_classes, self.encoder.dimension):
            raise ValueError(
                f"expected global model of shape "
                f"({self.num_classes}, {self.encoder.dimension}), got "
                f"{global_classes.shape}"
            )
        model = HDCClassifier(
            dimension=self.encoder.dimension,
            encoder=self.encoder,
            learning_rate=self.learning_rate,
            seed=self._rng,
        )
        model.num_classes = self.num_classes
        model.class_hypervectors = global_classes.copy()
        model.fit(self._encoded, self._labels, iterations=iterations,
                  num_classes=self.num_classes, encoded=True)
        return model.class_hypervectors

    def upload_bytes(self) -> int:
        """Bytes sent per round: the float32 class-hypervector matrix."""
        return self.num_classes * self.encoder.dimension * 4
