"""Federated hyperdimensional learning across edge nodes (extension).

The paper's introduction motivates edge HDC with exactly this scenario:
IoT devices collecting data locally, where "sending all the data to the
cloud ... leads to a significant communication cost" and federated
learning over DNNs is too heavy for embedded devices.  HDC makes the
federated pattern unusually cheap: class hypervectors are *additive*,
so a server can aggregate local models by weighted averaging with no
gradient machinery, and only ``k x d`` values cross the network per
round (never raw data, and — per the paper's cited collaborative-
learning work — the random projection also obscures the inputs).

Pieces:

- :class:`~repro.federated.node.EdgeNode` — local data + local HDC
  training starting from the global model each round;
- :class:`~repro.federated.server.FederatedServer` — sample-weighted
  aggregation of class hypervectors;
- :class:`~repro.federated.simulation.FederatedSimulation` — IID or
  Dirichlet non-IID data splits, multi-round orchestration, accuracy
  and communication accounting.
"""

from repro.federated.node import EdgeNode
from repro.federated.server import FederatedServer
from repro.federated.simulation import (
    FederatedConfig,
    FederatedResult,
    FederatedSimulation,
)

__all__ = [
    "EdgeNode",
    "FederatedConfig",
    "FederatedResult",
    "FederatedServer",
    "FederatedSimulation",
]
