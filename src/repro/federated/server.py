"""The aggregation server: weighted averaging of class hypervectors."""

from __future__ import annotations

import numpy as np

__all__ = ["FederatedServer"]


class FederatedServer:
    """Holds the global class hypervectors and aggregates node updates.

    Aggregation is a sample-weighted mean — the HDC analogue of FedAvg,
    exact here because class hypervectors are linear accumulations of
    encoded samples (bundling commutes with averaging).

    Args:
        num_classes: Global class count ``k``.
        dimension: Hypervector width ``d``.
    """

    def __init__(self, num_classes: int, dimension: int):
        if num_classes < 2 or dimension < 1:
            raise ValueError("need num_classes >= 2 and dimension >= 1")
        self.num_classes = num_classes
        self.dimension = dimension
        self.global_classes = np.zeros((num_classes, dimension),
                                       dtype=np.float32)
        self.rounds_completed = 0

    def aggregate(self, updates: list[np.ndarray],
                  weights: list[int]) -> np.ndarray:
        """Fold node updates into the global model.

        Args:
            updates: Per-node ``(num_classes, dimension)`` matrices.
            weights: Per-node sample counts.

        Returns:
            The new global class-hypervector matrix.
        """
        if not updates:
            raise ValueError("no updates to aggregate")
        if len(updates) != len(weights):
            raise ValueError(
                f"{len(updates)} updates but {len(weights)} weights"
            )
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive sample counts")
        total = float(sum(weights))
        aggregate = np.zeros_like(self.global_classes)
        for update, weight in zip(updates, weights):
            update = np.asarray(update, dtype=np.float32)
            if update.shape != self.global_classes.shape:
                raise ValueError(
                    f"update shape {update.shape} does not match global "
                    f"model {self.global_classes.shape}"
                )
            aggregate += (weight / total) * update
        self.global_classes = aggregate
        self.rounds_completed += 1
        return self.global_classes

    def broadcast_bytes(self, num_nodes: int) -> int:
        """Bytes sent down per round (the global model to each node)."""
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        return num_nodes * self.num_classes * self.dimension * 4
