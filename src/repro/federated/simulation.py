"""Multi-node federated HDC simulation: splits, rounds, accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.loaders import Dataset
from repro.federated.node import EdgeNode
from repro.federated.server import FederatedServer
from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.hypervector import dot_similarity

__all__ = ["FederatedConfig", "FederatedResult", "FederatedSimulation"]


@dataclass(frozen=True)
class FederatedConfig:
    """Federated-simulation parameters.

    Attributes:
        num_nodes: Number of edge nodes.
        rounds: Communication rounds.
        local_iterations: Local training passes per round.
        dimension: Hypervector width (shared encoder).
        learning_rate: Local update scale.
        non_iid_alpha: ``None`` for an IID split; otherwise the Dirichlet
            concentration controlling label skew per node (smaller =
            more skewed; 0.1 is a severely non-IID split).
    """

    num_nodes: int = 8
    rounds: int = 5
    local_iterations: int = 2
    dimension: int = 4096
    learning_rate: float = 0.035
    non_iid_alpha: float | None = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.rounds < 1 or self.local_iterations < 1:
            raise ValueError("num_nodes, rounds, local_iterations must be >= 1")
        if self.non_iid_alpha is not None and self.non_iid_alpha <= 0:
            raise ValueError(
                f"non_iid_alpha must be > 0, got {self.non_iid_alpha}"
            )


@dataclass
class FederatedResult:
    """Outcome of a federated run.

    Attributes:
        round_accuracy: Global-model test accuracy after each round.
        upload_bytes_per_round: Total node→server traffic per round.
        broadcast_bytes_per_round: Server→node traffic per round.
        node_sample_counts: Local dataset sizes.
        node_class_counts: Distinct labels held by each node (non-IID
            diagnostics).
    """

    round_accuracy: list = field(default_factory=list)
    upload_bytes_per_round: int = 0
    broadcast_bytes_per_round: int = 0
    node_sample_counts: list = field(default_factory=list)
    node_class_counts: list = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        """Accuracy after the last round."""
        if not self.round_accuracy:
            raise ValueError("no rounds were run")
        return self.round_accuracy[-1]

    @property
    def total_communication_bytes(self) -> int:
        """All traffic over the whole run, both directions."""
        rounds = len(self.round_accuracy)
        return rounds * (self.upload_bytes_per_round
                         + self.broadcast_bytes_per_round)


class FederatedSimulation:
    """Runs federated HDC over a dataset split across edge nodes.

    Args:
        config: Simulation parameters.
        seed: Seed for the shared encoder, the split, and local training.
    """

    def __init__(self, config: FederatedConfig | None = None,
                 seed: int | None = None):
        self.config = config if config is not None else FederatedConfig()
        self._rng = np.random.default_rng(seed)

    def run(self, dataset: Dataset) -> FederatedResult:
        """Split, train for the configured rounds, return the result."""
        config = self.config
        encoder = NonlinearEncoder(
            dataset.num_features, config.dimension, seed=self._rng,
        )
        partitions = self._split(dataset.train_y)
        nodes = [
            EdgeNode(
                node_id=i,
                x=dataset.train_x[idx],
                y=dataset.train_y[idx],
                encoder=encoder,
                num_classes=dataset.num_classes,
                learning_rate=config.learning_rate,
                seed=self._rng,
            )
            for i, idx in enumerate(partitions)
        ]
        server = FederatedServer(dataset.num_classes, config.dimension)
        test_encoded = encoder.encode(dataset.test_x)

        result = FederatedResult(
            upload_bytes_per_round=sum(n.upload_bytes() for n in nodes),
            broadcast_bytes_per_round=server.broadcast_bytes(len(nodes)),
            node_sample_counts=[n.num_samples for n in nodes],
            node_class_counts=[len(n.local_classes()) for n in nodes],
        )
        for _ in range(config.rounds):
            updates = [
                node.train(server.global_classes, config.local_iterations)
                for node in nodes
            ]
            server.aggregate(updates, [n.num_samples for n in nodes])
            scores = dot_similarity(test_encoded, server.global_classes)
            predictions = np.argmax(scores, axis=1)
            result.round_accuracy.append(
                float(np.mean(predictions == dataset.test_y))
            )
        return result

    def _split(self, labels: np.ndarray) -> list[np.ndarray]:
        """Partition training indices across nodes (IID or Dirichlet)."""
        config = self.config
        num_samples = len(labels)
        if num_samples < config.num_nodes:
            raise ValueError(
                f"cannot split {num_samples} samples across "
                f"{config.num_nodes} nodes"
            )
        if config.non_iid_alpha is None:
            order = self._rng.permutation(num_samples)
            return [np.asarray(part) for part in
                    np.array_split(order, config.num_nodes)]
        # Dirichlet label-skew split: each class's samples are divided
        # among nodes with Dirichlet-distributed proportions.
        partitions: list[list[int]] = [[] for _ in range(config.num_nodes)]
        for cls in np.unique(labels):
            cls_indices = np.nonzero(labels == cls)[0]
            self._rng.shuffle(cls_indices)
            proportions = self._rng.dirichlet(
                np.full(config.num_nodes, config.non_iid_alpha)
            )
            boundaries = (np.cumsum(proportions)[:-1]
                          * len(cls_indices)).astype(int)
            for node, chunk in enumerate(np.split(cls_indices, boundaries)):
                partitions[node].extend(chunk.tolist())
        # Guarantee every node has at least one sample by stealing from
        # the largest partition.
        for node, part in enumerate(partitions):
            if not part:
                donor = max(range(config.num_nodes),
                            key=lambda i: len(partitions[i]))
                partitions[node].append(partitions[donor].pop())
        return [np.asarray(sorted(part)) for part in partitions]
