"""Energy accounting: average power x modeled time.

The paper's Table II frames the Raspberry Pi 3 comparison as "similar
average power consumption": Pi 3 ~3.7 W versus host-CPU-share + Edge TPU
~2 W active.  These helpers make that comparison explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyReport", "energy_joules"]


def energy_joules(power_w: float, seconds: float) -> float:
    """Energy in joules for ``seconds`` at ``power_w`` average draw."""
    if power_w <= 0:
        raise ValueError(f"power must be > 0, got {power_w}")
    if seconds < 0:
        raise ValueError(f"seconds must be >= 0, got {seconds}")
    return power_w * seconds


@dataclass(frozen=True)
class EnergyReport:
    """Per-platform energy summary for one workload.

    Attributes:
        platform: Platform name.
        seconds: Modeled runtime.
        power_w: Average power used for the conversion.
    """

    platform: str
    seconds: float
    power_w: float

    @property
    def joules(self) -> float:
        """Total energy."""
        return energy_joules(self.power_w, self.seconds)

    def efficiency_vs(self, other: "EnergyReport") -> float:
        """Energy-efficiency ratio: ``other.joules / self.joules``.

        Greater than 1 means this platform is more energy-efficient.
        """
        if self.joules == 0:
            raise ZeroDivisionError("cannot compare a zero-energy report")
        return other.joules / self.joules
