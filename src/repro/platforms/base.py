"""Platform interface and the virtual clock.

A :class:`Platform` converts operation shapes into modeled seconds; a
:class:`VirtualClock` accumulates them.  All benchmark "runtimes" in this
reproduction are virtual-clock readings, so results are deterministic
and machine-independent (the paper's numbers are wall-clock on physical
hardware; ours model the same structure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CpuSpec", "Platform", "VirtualClock"]


@dataclass(frozen=True)
class CpuSpec:
    """Calibration constants for a CPU-class platform.

    Attributes:
        name: Platform name.
        matmul_gflops: Effective dense-matmul throughput (BLAS-level,
            all cores) in GFLOP/s.
        memory_gbps: Effective streaming memory bandwidth in GB/s,
            limiting elementwise operations on large arrays.
        tanh_ns_per_element: Cost of one scalar tanh evaluation
            (vectorized library rate) in nanoseconds.
        per_call_overhead_s: Fixed overhead per kernel invocation
            (dispatch, interpreter, cache warmup).
        power_w: Average active power draw, for energy accounting.
    """

    name: str
    matmul_gflops: float
    memory_gbps: float
    tanh_ns_per_element: float
    per_call_overhead_s: float
    power_w: float

    def __post_init__(self) -> None:
        if min(self.matmul_gflops, self.memory_gbps,
               self.tanh_ns_per_element) <= 0:
            raise ValueError("throughput constants must be > 0")
        if self.per_call_overhead_s < 0 or self.power_w <= 0:
            raise ValueError("overhead must be >= 0 and power > 0")


class Platform:
    """Interface: operation shapes → modeled seconds."""

    name: str
    power_w: float

    def matmul_seconds(self, m: int, k: int, n: int) -> float:
        """Seconds for a dense ``(m, k) @ (k, n)`` float multiply."""
        raise NotImplementedError

    def tanh_seconds(self, elements: int) -> float:
        """Seconds to apply tanh to ``elements`` values."""
        raise NotImplementedError

    def elementwise_seconds(self, elements: int,
                            bytes_per_element: int = 4) -> float:
        """Seconds for a streaming elementwise op over ``elements`` values."""
        raise NotImplementedError

    def argmax_seconds(self, rows: int, cols: int) -> float:
        """Seconds for a row-wise argmax over a ``(rows, cols)`` array."""
        raise NotImplementedError

    def call_overhead_seconds(self, calls: int = 1) -> float:
        """Fixed dispatch overhead for ``calls`` kernel invocations."""
        raise NotImplementedError


@dataclass
class VirtualClock:
    """Accumulates modeled time, optionally per named phase.

    Example::

        clock = VirtualClock()
        clock.charge("encode", platform.matmul_seconds(n, k, m))
        clock.elapsed()          # total
        clock.phase("encode")    # per phase
    """

    _total: float = 0.0
    _phases: dict = field(default_factory=dict)

    def charge(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` to ``phase`` (and the total)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time ({seconds})")
        self._total += seconds
        self._phases[phase] = self._phases.get(phase, 0.0) + seconds

    def elapsed(self) -> float:
        """Total accumulated seconds."""
        return self._total

    def phase(self, name: str) -> float:
        """Seconds accumulated under ``name`` (0.0 if never charged)."""
        return self._phases.get(name, 0.0)

    def phases(self) -> dict:
        """A copy of the per-phase breakdown."""
        return dict(self._phases)
