"""Edge TPU platform wrapper.

Thin adapter giving the Edge TPU simulator the same "platform" face as
the CPU models: a name, a power figure, and shape-level costs for the
two dense layers the HDC models use, without requiring materialized
weights.  The analytical experiment drivers (Figs. 5/6/10, Table II)
use this; the functional pipelines use :class:`repro.edgetpu.EdgeTpuDevice`
with real compiled models.
"""

from __future__ import annotations

from repro.edgetpu.arch import EdgeTpuArch
from repro.edgetpu.systolic import systolic_cycles

__all__ = ["EdgeTpuPlatform"]


class EdgeTpuPlatform:
    """Shape-level Edge TPU latency model.

    Args:
        arch: Device architecture; defaults to the standard USB device.
    """

    def __init__(self, arch: EdgeTpuArch | None = None):
        self.arch = arch if arch is not None else EdgeTpuArch()
        self.name = "edge-tpu-usb"
        self.power_w = self.arch.active_power_w

    def dense_cycles(self, input_dim: int, output_dim: int, batch: int) -> int:
        """MXU cycles for one dense layer invocation."""
        return systolic_cycles(
            input_dim, output_dim, batch,
            rows=self.arch.mxu_rows, cols=self.arch.mxu_cols,
        )

    def activation_cycles(self, elements: int) -> int:
        """Vector-unit cycles for an elementwise activation."""
        if elements < 0:
            raise ValueError(f"elements must be >= 0, got {elements}")
        return -(-elements // self.arch.vector_lanes)

    def invoke_seconds(self, layer_dims: list[tuple[int, int]], batch: int,
                       tanh_after_first: bool = True,
                       weight_bytes: int | None = None) -> float:
        """Modeled time of one invocation of a dense stack.

        Args:
            layer_dims: ``[(in, out), ...]`` for each dense layer.
            batch: Rows per invocation.
            tanh_after_first: Charge a tanh pass after the first layer
                (the HDC encoder's hidden activation).
            weight_bytes: Total parameter bytes (for the streaming
                penalty); computed from ``layer_dims`` at int8 when
                omitted.

        Returns:
            Seconds, including dispatch overhead and activation I/O.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if not layer_dims:
            raise ValueError("layer_dims must not be empty")
        arch = self.arch
        cycles = 0
        for index, (input_dim, output_dim) in enumerate(layer_dims):
            cycles += self.dense_cycles(input_dim, output_dim, batch)
            if tanh_after_first and index == 0:
                cycles += self.activation_cycles(output_dim) * batch
        if weight_bytes is None:
            weight_bytes = sum(i * o for i, o in layer_dims)
        streamed = max(0, weight_bytes - arch.parameter_buffer_bytes)
        input_bytes = batch * layer_dims[0][0]
        output_bytes = batch * layer_dims[-1][1]
        return (
            arch.invoke_overhead_s
            + arch.transfer_time(input_bytes)
            + arch.transfer_time(streamed)
            + arch.cycles_to_seconds(cycles)
            + arch.transfer_time(output_bytes)
        )

    def model_load_seconds(self, weight_bytes: int) -> float:
        """One-time model push cost for ``weight_bytes`` of parameters."""
        if weight_bytes < 0:
            raise ValueError(f"weight_bytes must be >= 0, got {weight_bytes}")
        return self.arch.model_setup_s + self.arch.transfer_time(weight_bytes)
