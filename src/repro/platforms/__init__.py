"""Analytical performance and energy models for the evaluation platforms.

The paper's runtime numbers come from three machines: a mobile Intel CPU
(i5-5250U laptop host), the USB Edge TPU, and a Raspberry Pi 3 (ARM
Cortex-A53).  None are available here, so each is modeled as a
deterministic cost model over operation shapes (matmul, tanh,
elementwise traffic), driving a virtual clock.  Constants are calibrated
so the *ratios* the paper reports re-emerge (see DESIGN.md section 2);
absolute seconds are estimates.
"""

from repro.platforms.base import CpuSpec, Platform, VirtualClock
from repro.platforms.cpu import (
    MOBILE_CPU_SPEC,
    RASPBERRY_PI3_SPEC,
    CpuPlatform,
    MobileCpu,
    RaspberryPi3,
)
from repro.platforms.tpu import EdgeTpuPlatform
from repro.platforms.energy import EnergyReport, energy_joules

__all__ = [
    "CpuPlatform",
    "CpuSpec",
    "EdgeTpuPlatform",
    "EnergyReport",
    "MOBILE_CPU_SPEC",
    "MobileCpu",
    "Platform",
    "RASPBERRY_PI3_SPEC",
    "RaspberryPi3",
    "VirtualClock",
    "energy_joules",
]
