"""CPU platform models: the laptop host and the Raspberry Pi 3.

Calibration targets (DESIGN.md section 2):

- **MobileCpu** models the paper's host, an Intel i5-5250U (2C/4T
  Broadwell, AVX2+FMA, ~172 GFLOP/s SP peak).  Effective BLAS throughput
  ~44 GFLOP/s and a ~2.2 ns/element vectorized tanh reproduce the
  paper's CPU-baseline encoding costs (these two constants, plus the
  Edge TPU transfer model, jointly set Fig. 10's speedup curve:
  ~1x at 20 features, ~8-9x at 700).
- **RaspberryPi3** models the ARM Cortex-A53 comparison platform
  (4 cores, 1.2 GHz, NEON; ~38 GFLOP/s SP peak).  Effective ~8 GFLOP/s
  matmul and ~20 ns/element tanh reproduce Table II's 15-24x training
  and 7-11x inference ratios.
"""

from __future__ import annotations

from repro.platforms.base import CpuSpec, Platform

__all__ = [
    "CpuPlatform",
    "MOBILE_CPU_SPEC",
    "MobileCpu",
    "RASPBERRY_PI3_SPEC",
    "RaspberryPi3",
]

MOBILE_CPU_SPEC = CpuSpec(
    name="mobile-cpu-i5-5250U",
    matmul_gflops=44.0,
    memory_gbps=12.0,
    tanh_ns_per_element=2.2,
    per_call_overhead_s=5e-6,
    power_w=15.0,
)

RASPBERRY_PI3_SPEC = CpuSpec(
    name="raspberry-pi-3-a53",
    matmul_gflops=8.0,
    memory_gbps=2.0,
    tanh_ns_per_element=20.0,
    per_call_overhead_s=2e-5,
    power_w=3.7,
)


class CpuPlatform(Platform):
    """Roofline-style CPU cost model driven by a :class:`CpuSpec`.

    Dense matmuls run at the compute roof; elementwise work runs at the
    memory roof; tanh pays a per-element library cost.  Every modeled
    kernel also pays the per-call dispatch overhead once.
    """

    def __init__(self, spec: CpuSpec):
        self.spec = spec
        self.name = spec.name
        self.power_w = spec.power_w

    def matmul_seconds(self, m: int, k: int, n: int) -> float:
        if min(m, k, n) < 1:
            raise ValueError(f"matmul dims must be >= 1, got ({m}, {k}, {n})")
        flops = 2.0 * m * k * n
        compute = flops / (self.spec.matmul_gflops * 1e9)
        # Large matmuls also stream operands/result at least once.
        traffic_bytes = 4.0 * (m * k + k * n + m * n)
        bandwidth = traffic_bytes / (self.spec.memory_gbps * 1e9)
        return max(compute, bandwidth) + self.spec.per_call_overhead_s

    def tanh_seconds(self, elements: int) -> float:
        if elements < 0:
            raise ValueError(f"elements must be >= 0, got {elements}")
        return (
            elements * self.spec.tanh_ns_per_element * 1e-9
            + self.spec.per_call_overhead_s
        )

    def elementwise_seconds(self, elements: int,
                            bytes_per_element: int = 4) -> float:
        if elements < 0:
            raise ValueError(f"elements must be >= 0, got {elements}")
        # Read + write traffic at the memory roof.
        traffic = 2.0 * elements * bytes_per_element
        return (
            traffic / (self.spec.memory_gbps * 1e9)
            + self.spec.per_call_overhead_s
        )

    def argmax_seconds(self, rows: int, cols: int) -> float:
        if rows < 0 or cols < 1:
            raise ValueError(f"bad argmax shape ({rows}, {cols})")
        # One compare per element at the memory roof (single read).
        traffic = 4.0 * rows * cols
        return (
            traffic / (self.spec.memory_gbps * 1e9)
            + self.spec.per_call_overhead_s
        )

    def call_overhead_seconds(self, calls: int = 1) -> float:
        if calls < 0:
            raise ValueError(f"calls must be >= 0, got {calls}")
        return calls * self.spec.per_call_overhead_s


class MobileCpu(CpuPlatform):
    """The paper's host platform: mobile Intel i5-5250U class."""

    def __init__(self):
        super().__init__(MOBILE_CPU_SPEC)


class RaspberryPi3(CpuPlatform):
    """The paper's embedded comparison: Raspberry Pi 3 (Cortex-A53)."""

    def __init__(self):
        super().__init__(RASPBERRY_PI3_SPEC)
