"""repro — reproduction of "Algorithm-Hardware Co-Design for Efficient
Brain-Inspired Hyperdimensional Learning on Edge" (DATE 2022).

The package implements the paper's full stack from scratch:

- :mod:`repro.hdc` — the hyperdimensional learning algorithm (nonlinear
  random-projection encoding, class-hypervector training) and the bagging
  training optimization that is the paper's second contribution.
- :mod:`repro.nn` — the HDC-as-a-hyper-wide-neural-network interpretation
  (paper Fig. 2) used to compile HDC onto a DNN inference accelerator.
- :mod:`repro.tflite` — a miniature TensorFlow-Lite stack: float graph to
  int8 post-training quantization, a flat serialized model container, and
  a reference interpreter with TFLite-faithful integer kernels.
- :mod:`repro.edgetpu` — an Edge TPU simulator: op legality checks, weight
  tiling onto a weight-stationary systolic MXU, on-chip parameter buffer
  allocation, USB 3.0 transfer and cycle-level latency models.
- :mod:`repro.platforms` — analytical performance/energy models for the
  host mobile CPU, a Raspberry Pi 3 class ARM CPU, and the Edge TPU.
- :mod:`repro.runtime` — the co-design framework itself (paper Fig. 1 and
  Fig. 3): encoding on the accelerator, class-hypervector updates on the
  host CPU, bagging orchestration and fused inference-model generation.
- :mod:`repro.data` — seeded synthetic surrogates for the five Table-I
  datasets (FACE, ISOLET, UCIHAR, MNIST, PAMAP2).
- :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart::

    from repro.data import isolet
    from repro.hdc import HDCClassifier

    ds = isolet(max_samples=2000, seed=7)
    model = HDCClassifier(dimension=4096, seed=7)
    model.fit(ds.train_x, ds.train_y, iterations=10)
    accuracy = model.score(ds.test_x, ds.test_y)
"""

from repro._version import __version__

__all__ = ["__version__"]
