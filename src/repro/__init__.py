"""repro — reproduction of "Algorithm-Hardware Co-Design for Efficient
Brain-Inspired Hyperdimensional Learning on Edge" (DATE 2022).

The package implements the paper's full stack from scratch:

- :mod:`repro.hdc` — the hyperdimensional learning algorithm (nonlinear
  random-projection encoding, class-hypervector training) and the bagging
  training optimization that is the paper's second contribution.
- :mod:`repro.nn` — the HDC-as-a-hyper-wide-neural-network interpretation
  (paper Fig. 2) used to compile HDC onto a DNN inference accelerator.
- :mod:`repro.tflite` — a miniature TensorFlow-Lite stack: float graph to
  int8 post-training quantization, a flat serialized model container, and
  a reference interpreter with TFLite-faithful integer kernels.
- :mod:`repro.edgetpu` — an Edge TPU simulator: op legality checks, weight
  tiling onto a weight-stationary systolic MXU, on-chip parameter buffer
  allocation, USB 3.0 transfer and cycle-level latency models.
- :mod:`repro.platforms` — analytical performance/energy models for the
  host mobile CPU, a Raspberry Pi 3 class ARM CPU, and the Edge TPU.
- :mod:`repro.runtime` — the co-design framework itself (paper Fig. 1 and
  Fig. 3): encoding on the accelerator, class-hypervector updates on the
  host CPU, bagging orchestration and fused inference-model generation.
- :mod:`repro.data` — seeded synthetic surrogates for the five Table-I
  datasets (FACE, ISOLET, UCIHAR, MNIST, PAMAP2).
- :mod:`repro.experiments` — one driver per paper table/figure.

- :mod:`repro.compression` — post-training model compression (DPQ-HD
  prune + sub-int8 quantization, LDC-style distillation) and the
  compiled serving tier ladder.
- :mod:`repro.serving` — the online inference server (dynamic batching,
  admission control, failover, hot model swap, compression-tiered
  graceful degradation).
- :mod:`repro.observability` — span tracing on the virtual clock,
  metrics, and trace exporters (JSONL / Chrome ``trace_event`` /
  flamegraph).
- :mod:`repro.api` — the top-level facade re-exported here:
  :func:`~repro.api.train` → :func:`~repro.api.deploy` →
  :func:`~repro.api.serve` on frozen :class:`~repro.config.PipelineConfig`
  / :class:`~repro.config.ServeConfig` objects.

Quickstart::

    from repro.data import isolet
    from repro.hdc import HDCClassifier

    ds = isolet(max_samples=2000, seed=7)
    model = HDCClassifier(dimension=4096, seed=7)
    model.fit(ds.train_x, ds.train_y, iterations=10)
    accuracy = model.score(ds.test_x, ds.test_y)

Or through the facade::

    import repro

    result = repro.train(ds.train_x, ds.train_y,
                         config=repro.PipelineConfig(seed=7))
"""

from repro._version import __version__

__all__ = [
    "AutoscalerConfig",
    "BackendSpec",
    "ClusterConfig",
    "DiurnalCurve",
    "FleetSpec",
    "MetricsRegistry",
    "PipelineConfig",
    "PlacementOptimizer",
    "PlanConfig",
    "ServeConfig",
    "TenantSpec",
    "TierPolicy",
    "TierSpec",
    "Tracer",
    "__version__",
    "api",
    "compress",
    "deploy",
    "serve",
    "serve_cluster",
    "train",
]

# Lazy facade exports (PEP 562): `import repro` stays cheap for callers
# that only want a submodule, and the numpy-heavy pipeline stack loads
# on first use of repro.train / repro.PipelineConfig / ...
_LAZY = {
    "AutoscalerConfig": ("repro.cluster.autoscaler", "AutoscalerConfig"),
    "ClusterConfig": ("repro.cluster.cluster", "ClusterConfig"),
    "DiurnalCurve": ("repro.cluster.traffic", "DiurnalCurve"),
    "MetricsRegistry": ("repro.observability.metrics", "MetricsRegistry"),
    "TenantSpec": ("repro.cluster.traffic", "TenantSpec"),
    "serve_cluster": ("repro.api", "serve_cluster"),
    "BackendSpec": ("repro.config", "BackendSpec"),
    "FleetSpec": ("repro.config", "FleetSpec"),
    "PlacementOptimizer": ("repro.runtime.placement",
                           "PlacementOptimizer"),
    "PipelineConfig": ("repro.config", "PipelineConfig"),
    "PlanConfig": ("repro.config", "PlanConfig"),
    "ServeConfig": ("repro.config", "ServeConfig"),
    "TierPolicy": ("repro.config", "TierPolicy"),
    "TierSpec": ("repro.compression.tiers", "TierSpec"),
    "Tracer": ("repro.observability.trace", "Tracer"),
    "api": ("repro.api", None),
    "compress": ("repro.api", "compress"),
    "deploy": ("repro.api", "deploy"),
    "serve": ("repro.api", "serve"),
    "train": ("repro.api", "train"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
