"""Ahead-of-time serving plans: arena-backed, zero-allocation dispatch.

The classic serving path re-derives work per batch: it stacks request
features into a fresh array, quantizes into another, and every fused
stage allocates its widened input, accumulator and output.  At edge
batch sizes the allocator traffic rivals the arithmetic.  A
:class:`ServingPlan` moves all of that to deployment time:

- **Batch bucketing** — incoming batches are padded up to a power-of-
  two bucket ladder (plus the configured maximum).  Padding rows carry
  the input zero point (real 0.0), and their outputs are sliced off
  before anything reads them.  A handful of bucket sizes means every
  per-``(model, batch)`` memo in the stack — ``lower()`` programs,
  ``invoke_seconds``, ``invoke_breakdown`` — is prewarmed once and hit
  forever after.
- **Arena-backed stages** — each tier's op chain is resolved once into
  a :class:`ModelPlan`: per fused stage, scratch buffers (widened
  input, accumulator, float64 codes, gather indices, int8 output) are
  preallocated at the largest bucket and sliced per bucket.  Steady-
  state invokes write through ``out=`` numpy kernels (or the native
  AVX-512 VNNI kernels of :mod:`repro.native` when the CPU and the
  op's int32 bound allow) and perform **zero heap allocations**.
- **Shared execution** — the same plan object serves the device
  simulator (via the ``executor=`` hook on
  :meth:`~repro.edgetpu.device.EdgeTpuDevice.invoke`), the host
  CPU-fallback path and every degraded tier, so all paths stay
  bit-identical to the reference interpreter by construction (the
  tests assert it against the frozen ``run_reference`` oracles).

The plan changes *measured wall time only*: modeled virtual-clock
charges are derived from the same ``invoke_breakdown`` /
``cpu_op_seconds`` plans as the classic path, evaluated at the padded
bucket size actually dispatched.
"""

from __future__ import annotations

import numpy as np

from repro import native
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, TanhOp

__all__ = ["ModelPlan", "ServingPlan", "bucket_ladder"]

_INT32_MAX = 2**31 - 1


def bucket_ladder(max_batch: int) -> tuple[int, ...]:
    """The padded batch sizes a plan preallocates for.

    Powers of two up to ``max_batch``, with ``max_batch`` itself
    appended when it is not a power of two — so no batch pads by more
    than 2x and the dispatcher's own cap is always representable.
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    ladder = []
    size = 1
    while size < max_batch:
        ladder.append(size)
        size *= 2
    ladder.append(max_batch)
    return tuple(ladder)


# ----------------------------------------------------------------------
# Stage compilation: op chain -> spec list -> per-bucket closures
# ----------------------------------------------------------------------


def _stage_specs(ops, width: int):
    """Resolve an op chain into ``(kind, op, fused, in_w, out_w)`` specs.

    Mirrors :func:`repro.tflite.ops.fused_stages` pairing: ``FC+TANH``
    becomes one fused stage; ``FC+ARGMAX`` splits into a bare FC plus
    an argmax (bit-identical — requantization is monotone, so argmax
    over int8 codes equals argmax over the float64 codes the fused
    kernel reduces).
    """
    specs = []
    ops = list(ops)
    index = 0
    while index < len(ops):
        op = ops[index]
        nxt = ops[index + 1] if index + 1 < len(ops) else None
        if isinstance(op, FullyConnectedOp):
            out_w = op.output_dim(width)
            if isinstance(nxt, TanhOp):
                specs.append(("fc", op, nxt, width, out_w))
                index += 2
            elif isinstance(nxt, ArgmaxOp):
                specs.append(("fc", op, None, width, out_w))
                specs.append(("argmax", nxt, None, out_w, 1))
                index += 2
            else:
                specs.append(("fc", op, None, width, out_w))
                index += 1
            width = out_w
        elif isinstance(op, TanhOp):
            specs.append(("tanh", op, None, width, width))
            index += 1
        elif isinstance(op, ArgmaxOp):
            specs.append(("argmax", op, None, width, 1))
            index += 1
            width = 1
        else:
            # Unknown op kind: correct but allocating (op.run).  None of
            # the repo's models hit this; the zero-allocation guarantee
            # covers FC/TANH/ARGMAX chains.
            specs.append(("generic", op, None, width, op.output_dim(width)))
            width = op.output_dim(width)
            index += 1
    return specs


class _FcStage:
    """Arena + kernels for one fused ``FC(+TANH)`` stage.

    Dispatches to the native VNNI kernel when the module is available,
    the requantization multiplier is per-tensor, and the static bound
    proves the kernel's int32 accumulator cannot overflow; otherwise to
    the in-place numpy path (``accumulate_into`` / ``requantize_into``
    on the op).  Both are bit-identical to the op's ``run`` /
    ``run_tanh_fused``.
    """

    def __init__(self, op: FullyConnectedOp, tanh: TanhOp | None,
                 max_rows: int, allow_native: bool):
        self.op = op
        self.tanh = tanh
        self.n = op.weights.shape[1]
        self.native = False
        if (allow_native and native.available()
                and isinstance(op._multiplier, float)
                and native.vnni_accumulator_bound(
                    op.weights, op._offset_i64) <= _INT32_MAX):
            try:
                self._packed = native.pack_fc(op.weights, op._offset_i64)
            except OverflowError:
                self._packed = None
            else:
                self.native = True
        if self.native:
            packed = self._packed
            # Shifted-activation buffer: the zero padding in columns
            # [k, k4*4) is written once here and never again.
            self._a_u8 = np.zeros((max_rows, packed.k4 * 4),
                                  dtype=np.uint8)
            self._out = np.zeros((max_rows, packed.n_pad), dtype=np.int8)
            self._lut = tanh.lut if tanh is not None else native.IDENTITY_LUT
        else:
            dtype = op.gemm_dtype
            k = op.weights.shape[0]
            self._x_wide = np.zeros((max_rows, k), dtype=dtype)
            self._acc = np.zeros((max_rows, self.n), dtype=dtype)
            self._codes = np.zeros((max_rows, self.n), dtype=np.float64)
            self._out = np.zeros((max_rows, self.n), dtype=np.int8)
            self._idx = (np.zeros((max_rows, self.n), dtype=np.intp)
                         if tanh is not None else None)
            # Pre-tile the broadcast operands: adding a (n,) row to a
            # (rows, n) accumulator makes numpy malloc a transient
            # iteration buffer per call; same-shape operands don't.
            self._off_tile = np.empty((max_rows, self.n), dtype=dtype)
            self._off_tile[:] = op._gemm_operands()[1]
            self._mult_tile = None
            if not isinstance(op._multiplier, float):
                self._mult_tile = np.empty((max_rows, self.n),
                                           dtype=np.float64)
                self._mult_tile[:] = op._multiplier

    def bind(self, rows: int, x_view: np.ndarray):
        """Build this stage's zero-allocation closure for one bucket.

        Returns ``(run, out_view)`` where ``run()`` consumes ``x_view``
        in place and ``out_view`` is the stage's int8 output.
        """
        if self.native:
            op, packed, lut = self.op, self._packed, self._lut
            a_u8 = self._a_u8[:rows]
            out = self._out[:rows]
            trimmed = out[:, :self.n]
            mult = op._multiplier
            zp = op.output_qparams.zero_point
            qmin, qmax = op.output_qparams.qmin, op.output_qparams.qmax
            k4 = packed.k4

            def run() -> None:
                native._shift_u8(x_view, k4, out=a_u8)
                native.fc_fused_i8(a_u8, packed, mult, zp, qmin, qmax,
                                   lut, out)

            return run, trimmed

        op = self.op
        x_wide = self._x_wide[:rows]
        acc = self._acc[:rows]
        codes = self._codes[:rows]
        out = self._out[:rows]
        off = self._off_tile[:rows]
        mult = (self._mult_tile[:rows]
                if self._mult_tile is not None else None)
        if self.tanh is not None:
            idx = self._idx[:rows]
            lut = self.tanh.lut

            def run() -> None:
                op.accumulate_into(x_view, acc, x_wide, off)
                op.requantize_into(acc, codes, mult)
                np.add(codes, 128, out=codes)
                np.copyto(idx, codes, casting="unsafe")
                lut.take(idx, out=out, mode="clip")

        else:

            def run() -> None:
                op.accumulate_into(x_view, acc, x_wide, off)
                op.requantize_into(acc, codes, mult)
                np.copyto(out, codes, casting="unsafe")

        return run, out


class _TanhStage:
    """Arena for a standalone int8 tanh (LUT gather in place)."""

    def __init__(self, op: TanhOp, width: int, max_rows: int):
        self.op = op
        self._idx = np.zeros((max_rows, width), dtype=np.intp)
        self._out = np.zeros((max_rows, width), dtype=np.int8)

    def bind(self, rows: int, x_view: np.ndarray):
        idx = self._idx[:rows]
        out = self._out[:rows]
        lut_u8 = self.op._lut_u8

        def run() -> None:
            np.copyto(idx, x_view.view(np.uint8))
            lut_u8.take(idx, out=out, mode="clip")

        return run, out


class _ArgmaxStage:
    """Arena for the final argmax: int8 codes -> int64 class indices."""

    def __init__(self, max_rows: int):
        # np.argmax(out=...) demands an intp destination; on every
        # supported platform intp is int64, which the serving report
        # stores.  The (rows, 1) shape matches ArgmaxOp.run's keepdims.
        self._out = np.zeros((max_rows, 1), dtype=np.intp)

    def bind(self, rows: int, x_view: np.ndarray):
        out = self._out[:rows]
        flat = out.reshape(rows)

        def run() -> None:
            np.argmax(x_view, axis=-1, out=flat)

        return run, out


class _Bucket:
    """One padded batch size's precompiled views and closures."""

    __slots__ = ("rows", "scratch", "q", "device_runs", "device_out",
                 "tail_runs", "predictions", "executor")

    def __init__(self, rows, scratch, q, device_runs, device_out,
                 tail_runs, predictions):
        self.rows = rows
        self.scratch = scratch
        self.q = q
        self.device_runs = device_runs
        self.device_out = device_out
        self.tail_runs = tail_runs
        self.predictions = predictions

        def executor(x: np.ndarray) -> np.ndarray:
            # The server hands back the plan's own arena view; any other
            # caller (tests, standalone use) is copied in, still
            # allocation-free.
            if x is not q:
                np.copyto(q, x)
            for run in device_runs:
                run()
            return device_out

        self.executor = executor


class _HostModel:
    """Duck-typed ``CompiledModel`` stand-in for a bare :class:`FlatModel`.

    Lets :meth:`ModelPlan.for_model` plan the *whole* op chain as host
    stages — the reference-interpreter view of the model, with no
    device/tail split and no lowering plans to derive a tail width from.
    """

    __slots__ = ("model", "tpu_ops", "cpu_ops", "plans")

    def __init__(self, model):
        self.model = model
        self.tpu_ops = list(model.ops)
        self.cpu_ops = []
        self.plans = []


class ModelPlan:
    """One compiled model's arena-backed execution plan.

    Built once (typically by :class:`ServingPlan`); afterwards the
    steady-state path

    ``stage() -> executor (device) -> run_tail()``

    performs no heap allocations: features land in a preallocated
    float64 scratch, quantize in place, flow through per-stage arenas,
    and predictions come back as a view into a preallocated buffer.

    Args:
        compiled: The :class:`~repro.edgetpu.compiler.CompiledModel`.
        buckets: Padded batch sizes to preallocate (see
            :func:`bucket_ladder`).
        allow_native: Permit the AVX-512 VNNI kernels where provably
            exact (bit-identical either way).
    """

    def __init__(self, compiled, buckets, allow_native: bool = True):
        self.compiled = compiled
        self._allow_native = allow_native
        self.buckets = tuple(sorted(set(buckets)))
        if not self.buckets or self.buckets[0] < 1:
            raise ValueError("buckets must be positive batch sizes")
        self.max_rows = self.buckets[-1]
        self._qparams = compiled.model.input_spec.qparams
        self.in_dim = compiled.model.input_spec.size
        self._output_is_index = compiled.model.output_is_index

        max_rows = self.max_rows
        self._scratch = np.zeros((max_rows, self.in_dim), dtype=np.float64)
        self._q = np.zeros((max_rows, self.in_dim), dtype=np.int8)

        device_specs = _stage_specs(compiled.tpu_ops, self.in_dim)
        tail_width = (compiled.plans[-1].output_dim
                      if compiled.plans else self.in_dim)
        tail_specs = _stage_specs(compiled.cpu_ops, tail_width)
        self._device_stages = [self._build_stage(s) for s in device_specs]
        self._tail_stages = [self._build_stage(s) for s in tail_specs]
        self.native = any(
            isinstance(st, _FcStage) and st.native
            for st in self._device_stages + self._tail_stages
        )
        # Models whose last op emits activations get the final argmax
        # here (mirroring run_host_tail); index-output models end in an
        # ARGMAX op whose (rows, 1) output is reduced by a view.
        self._final_argmax = (None if self._output_is_index
                              else _ArgmaxStage(max_rows))

        self._by_rows: dict[int, _Bucket] = {}
        for rows in self.buckets:
            self._by_rows[rows] = self._bind_bucket(rows)

    @classmethod
    def for_model(cls, model, buckets, allow_native: bool = True
                  ) -> "ModelPlan":
        """Plan a bare :class:`~repro.tflite.flatmodel.FlatModel`.

        The whole op chain executes host-side through the arenas (no
        device/tail split) — the zero-allocation counterpart of
        :meth:`Interpreter.predict
        <repro.tflite.interpreter.Interpreter.predict>`, bit-identical
        to it.
        """
        return cls(_HostModel(model), buckets, allow_native=allow_native)

    def _build_stage(self, spec):
        kind, op, fused, in_w, _out_w = spec
        if kind == "fc":
            return _FcStage(op, fused, self.max_rows, self._allow_native)
        if kind == "tanh":
            return _TanhStage(op, in_w, self.max_rows)
        if kind == "argmax":
            return _ArgmaxStage(self.max_rows)
        # Plans are opt-in: an op kind without an arena path is a
        # build-time error, never a silent slow path.
        raise TypeError(
            f"op kind {type(op).__name__} has no arena execution path"
        )

    def _bind_bucket(self, rows: int) -> _Bucket:
        scratch = self._scratch[:rows]
        q = self._q[:rows]
        current = q
        device_runs = []
        for stage in self._device_stages:
            run, current = stage.bind(rows, current)
            device_runs.append(run)
        device_out = current
        tail_runs = []
        for stage in self._tail_stages:
            run, current = stage.bind(rows, current)
            tail_runs.append(run)
        if self._final_argmax is not None:
            run, current = self._final_argmax.bind(rows, current)
            tail_runs.append(run)
        predictions = current[:, 0]
        return _Bucket(rows, scratch, q, device_runs, device_out,
                       tail_runs, predictions)

    # ------------------------------------------------------------------
    # Steady-state API (all zero-allocation)
    # ------------------------------------------------------------------

    def bucket_for(self, n: int) -> int:
        """Smallest preallocated bucket holding ``n`` rows."""
        for rows in self.buckets:
            if rows >= n:
                return rows
        raise ValueError(
            f"batch of {n} exceeds the largest plan bucket "
            f"{self.buckets[-1]}"
        )

    def stage(self, features) -> np.ndarray:
        """Load a float batch into the arena and quantize it, padded.

        Args:
            features: A ``(n, in_dim)`` array or a sequence of ``n``
                1-D feature rows.

        Returns:
            The padded int8 input view, ``(bucket_for(n), in_dim)``.
            Padding rows quantize real 0.0 — exactly the input zero
            point — and their outputs are sliced off downstream.
        """
        n = len(features)
        bucket = self._by_rows[self.bucket_for(n)]
        if isinstance(features, np.ndarray):
            bucket.scratch[:n] = features
        else:
            for i, row in enumerate(features):
                bucket.scratch[i] = row
        if n < bucket.rows:
            bucket.scratch[n:] = 0.0
        self._qparams.quantize_into(bucket.scratch, bucket.q,
                                    bucket.scratch)
        return bucket.q

    def executor_for(self, rows: int):
        """The device-executor closure for one bucket size.

        Pass to :meth:`EdgeTpuDevice.invoke(..., executor=...)
        <repro.edgetpu.device.EdgeTpuDevice.invoke>`: it runs the
        arena-backed device stages in place of the interpreted stage
        loop, bit-identically, and returns the device-output view.
        """
        return self._by_rows[rows].executor

    def run_tail(self, outputs: np.ndarray) -> np.ndarray:
        """Host tail on device outputs; returns int64 predictions.

        The returned view covers the *padded* rows; slice ``[:n]`` for
        the real requests.
        """
        bucket = self._by_rows[outputs.shape[0]]
        if outputs is not bucket.device_out:
            np.copyto(bucket.device_out, outputs)
        for run in bucket.tail_runs:
            run()
        return bucket.predictions

    def run_host(self, q: np.ndarray) -> np.ndarray:
        """Full chain on the host (CPU-fallback path); predictions view."""
        bucket = self._by_rows[q.shape[0]]
        outputs = bucket.executor(q)
        return self.run_tail(outputs)

    def predict(self, features) -> np.ndarray:
        """Convenience: quantize + device stages + tail, sliced to ``n``.

        Returns a *view* into the plan's prediction buffer — copy it if
        it must survive the next invoke.
        """
        n = len(features)
        q = self.stage(features)
        return self.run_host(q)[:n]


class ServingPlan:
    """The server's ahead-of-time plan across every resident tier.

    Compiles a :class:`ModelPlan` per tier, prewarms the lowering and
    latency memos for every (tier, bucket) pair, and survives hot swaps
    via :meth:`replace_primary` (only tier 0's plan is rebuilt; the
    degradation ladder keeps its arenas).

    Args:
        tiers: Compiled models, tier 0 first (a single-model server
            passes a one-element list).
        max_bucket: Largest padded batch (usually the batcher's
            ``max_batch``).
        allow_native: Permit the native VNNI kernels.
        prewarm: Pre-fill ``lower()`` / ``invoke_seconds`` /
            ``invoke_breakdown`` for every (tier, bucket) pair.
    """

    def __init__(self, tiers, max_bucket: int, allow_native: bool = True,
                 prewarm: bool = True):
        tiers = list(tiers)
        if not tiers:
            raise ValueError("need at least one compiled model")
        self.buckets = bucket_ladder(max_bucket)
        self.allow_native = allow_native
        self.prewarm = prewarm
        self.plans = [self._compile(c) for c in tiers]
        self._by_id = {id(p.compiled): p for p in self.plans}

    def _compile(self, compiled) -> ModelPlan:
        plan = ModelPlan(compiled, self.buckets,
                         allow_native=self.allow_native)
        if self.prewarm:
            from repro.edgetpu.program import lower
            for rows in self.buckets:
                lower(compiled, rows)
                compiled.invoke_breakdown(rows)
                compiled.invoke_seconds(rows)
        return plan

    def bucket_for(self, n: int) -> int:
        """Smallest bucket holding ``n`` rows (shared ladder)."""
        return self.plans[0].bucket_for(n)

    def plan_for(self, compiled) -> ModelPlan | None:
        """The tier plan serving ``compiled`` (identity match)."""
        return self._by_id.get(id(compiled))

    def replace_primary(self, compiled) -> ModelPlan:
        """Recompile tier 0 for a hot-swapped model.

        The old primary's plan (and its arenas) is dropped; degraded
        tiers keep theirs — a swap replaces only tier 0.
        """
        old = self.plans[0]
        if compiled is old.compiled:
            return old
        del self._by_id[id(old.compiled)]
        plan = self._compile(compiled)
        self.plans[0] = plan
        self._by_id[id(compiled)] = plan
        return plan
