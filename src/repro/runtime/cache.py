"""A small bounded LRU mapping for per-``(model, batch)`` memo caches.

The serving stack memoizes pure derivations keyed by batch size —
``CompiledModel.invoke_seconds``, ``lower()`` programs, device
breakdown dicts, the server's service estimates.  Plain dicts are
correct but unbounded: a long-running server fed adversarial batch
sizes (every request count distinct) grows them without limit.  These
caches hold *recomputable* values, so eviction can never change a
result — only cost a recomputation — which makes a tiny LRU the right
container.  :class:`LruCache` is that container: dict-like ``get`` /
``put`` with move-to-front on hit and eviction of the least recently
used entry past ``maxsize``.

This module is a leaf (stdlib only) so the :mod:`repro.edgetpu` layer
can import it without touching the rest of :mod:`repro.runtime`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

__all__ = ["LruCache"]


class LruCache:
    """Bounded mapping with least-recently-used eviction.

    Args:
        maxsize: Maximum number of entries kept; must be >= 1.  Both
            ``get`` hits and ``put`` updates refresh an entry's
            recency.
    """

    __slots__ = ("maxsize", "_data")

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def get(self, key, default=None):
        """Return the cached value (refreshing recency) or ``default``."""
        try:
            self._data.move_to_end(key)
        except KeyError:
            return default
        return self._data[key]

    def put(self, key, value) -> None:
        """Insert/overwrite ``key``, evicting the oldest entry if full."""
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def get_or_build(self, key, build: Callable[[], object]):
        """Return the cached value, building and caching it on a miss."""
        sentinel = _MISSING
        value = self.get(key, sentinel)
        if value is sentinel:
            value = build()
            self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry."""
        self._data.clear()

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (f"LruCache(maxsize={self.maxsize}, "
                f"len={len(self._data)})")


_MISSING = object()
