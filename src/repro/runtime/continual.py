"""Continual on-edge learning under drift (extension).

Operationalizes the paper's motivation that edge models need frequent
updates: a :class:`ContinualLearner` consumes a drifting stream with
prequential (test-then-train) evaluation, updating class hypervectors
on the host after each batch — the exact phase the paper's bagging
optimization targets — and periodically regenerating the deployed Edge
TPU inference model, whose modelgen cost the paper's Fig. 5 accounts.

The comparison that matters: a *static* model trained once decays as
the distribution drifts; the continual learner pays a small recurring
update/modelgen cost and keeps its accuracy.  The bench
``benchmarks/test_continual.py`` measures both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.streams import DriftingStream
from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.model import HDCClassifier
from repro.platforms.base import Platform
from repro.platforms.cpu import MobileCpu
from repro.runtime.costs import CostModel

__all__ = ["ContinualLearner", "ContinualResult"]


@dataclass
class ContinualResult:
    """Prequential history of a continual run.

    Attributes:
        prequential_accuracy: Per-batch accuracy measured *before* that
            batch was used for training (the standard streaming metric).
        eval_accuracy: Accuracy on a fresh current-distribution test set
            at each evaluation point.
        update_seconds: Modeled host time spent on class-HV updates.
        modelgen_seconds: Modeled time spent regenerating the deployed
            inference model.
        model_refreshes: How many times the deployed model was rebuilt.
    """

    prequential_accuracy: list = field(default_factory=list)
    eval_accuracy: list = field(default_factory=list)
    update_seconds: float = 0.0
    modelgen_seconds: float = 0.0
    model_refreshes: int = 0

    @property
    def mean_prequential_accuracy(self) -> float:
        """Average online accuracy over the whole run."""
        if not self.prequential_accuracy:
            raise ValueError("no batches were processed")
        return float(np.mean(self.prequential_accuracy))


class ContinualLearner:
    """Streams batches through encode → predict → update.

    Args:
        num_features: Stream feature count.
        num_classes: Stream class count.
        dimension: Hypervector width.
        learning_rate: Update scale.
        refresh_interval: Regenerate the deployed inference model every
            this many batches (``None`` never refreshes — predictions
            still use the live class hypervectors; the refresh only
            matters for the deployed-model cost accounting).
        host: Host cost model for update/modelgen charging.
        seed: Seed for the encoder and training.
    """

    def __init__(self, num_features: int, num_classes: int,
                 dimension: int = 2048, learning_rate: float = 0.035,
                 refresh_interval: int | None = 20,
                 host: Platform | None = None,
                 seed: int | None = None):
        if refresh_interval is not None and refresh_interval < 1:
            raise ValueError(
                f"refresh_interval must be >= 1 or None, got {refresh_interval}"
            )
        self.num_classes = num_classes
        self.dimension = dimension
        self.refresh_interval = refresh_interval
        self.host = host if host is not None else MobileCpu()
        self._costs = CostModel(host=self.host)
        rng = np.random.default_rng(seed)
        self.encoder = NonlinearEncoder(num_features, dimension, seed=rng)
        self.model = HDCClassifier(
            dimension=dimension, encoder=self.encoder,
            learning_rate=learning_rate, seed=rng,
        )
        self._batches_seen = 0

    def warmup(self, x: np.ndarray, y: np.ndarray,
               iterations: int = 5) -> None:
        """Initial training before the stream starts."""
        self.model.fit(x, y, iterations=iterations,
                       num_classes=self.num_classes)

    def run(self, stream: DriftingStream, num_batches: int,
            batch_size: int = 64, train: bool = True,
            eval_every: int = 10, eval_samples: int = 256
            ) -> ContinualResult:
        """Consume the stream prequentially.

        Args:
            stream: The drifting source.
            num_batches: Batches to consume.
            batch_size: Samples per batch.
            train: Update the model after each batch; ``False`` measures
                the static-model decay baseline.
            eval_every: Evaluate on a fresh test set every N batches.
            eval_samples: Test-set size per evaluation.
        """
        if num_batches < 1:
            raise ValueError(f"num_batches must be >= 1, got {num_batches}")
        result = ContinualResult()
        for index in range(num_batches):
            x, y = stream.next_batch(batch_size)
            predictions = self.model.predict(x)
            result.prequential_accuracy.append(float(np.mean(predictions == y)))
            if train:
                history = self.model.partial_fit(x, y,
                                                 num_classes=self.num_classes)
                updates = history.history.updates[-1]
                result.update_seconds += self._costs.update_seconds(
                    batch_size, self.dimension, self.num_classes,
                    iterations=1,
                    mistake_fraction=updates / max(1, batch_size),
                    chunk_size=64,
                )
                self._batches_seen += 1
                if (self.refresh_interval is not None
                        and self._batches_seen % self.refresh_interval == 0):
                    params = (
                        self.encoder.num_features * self.dimension
                        + self.dimension * self.num_classes
                    )
                    result.modelgen_seconds += \
                        self._costs.modelgen_seconds(params)
                    result.model_refreshes += 1
            if (index + 1) % eval_every == 0:
                test_x, test_y = stream.test_set(eval_samples)
                result.eval_accuracy.append(
                    float(np.mean(self.model.predict(test_x) == test_y))
                )
        return result
