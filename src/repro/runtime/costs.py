"""Analytic phase-cost models for HDC training and inference.

These reproduce the structure of the paper's runtime measurements
(Figs. 5, 6, 10 and Table II) from dataset *shapes* alone:

- **CPU baseline** — float HDC entirely on a host CPU model: encoding is
  one hyper-wide matmul plus a tanh pass; each training iteration is a
  similarity matmul plus elementwise bundling/detaching updates for the
  mispredicted fraction.
- **TPU framework** — encoding batched through the Edge TPU (paying USB
  transfers of the *d*-wide encoded hypervectors back to the host, the
  term that caps encoding speedup), updates on the host CPU, plus the
  one-time TFLite-generation / compiler / model-load cost the paper
  includes in Fig. 5.
- **TPU + bagging** — ``M`` sub-models at ``d' = d/M`` on
  ``alpha``-sampled subsets for ``I'`` iterations; encoding cost scales
  by ``alpha`` (with ``M``-fold invoke overheads), update cost by the
  paper's ``C'/C`` factor.
- **Inference** — CPU batched (throughput measurement) vs. Edge TPU at
  batch 1 (the real-time edge setting), where the fixed per-invocation
  dispatch dominates small models (the PAMAP2 counterexample).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import DatasetSpec
from repro.hdc.bagging import BaggingConfig
from repro.hdc.metrics import weight_update_cost_ratio
from repro.platforms.base import Platform
from repro.platforms.cpu import MobileCpu
from repro.platforms.tpu import EdgeTpuPlatform

__all__ = ["CostModel", "HdcTrainingConfig", "PhaseBreakdown", "Workload"]


@dataclass(frozen=True)
class Workload:
    """Shape of one classification workload.

    Attributes:
        name: Workload name.
        num_train: Training samples.
        num_test: Test samples.
        num_features: Input features ``n``.
        num_classes: Classes ``k``.
    """

    name: str
    num_train: int
    num_test: int
    num_features: int
    num_classes: int

    def __post_init__(self) -> None:
        if min(self.num_train, self.num_test, self.num_features,
               self.num_classes) < 1:
            raise ValueError("all workload dimensions must be >= 1")

    @classmethod
    def from_spec(cls, spec: DatasetSpec) -> "Workload":
        """Build from a Table-I dataset spec."""
        return cls(
            name=spec.name,
            num_train=spec.num_train,
            num_test=spec.num_test,
            num_features=spec.num_features,
            num_classes=spec.num_classes,
        )


@dataclass(frozen=True)
class HdcTrainingConfig:
    """HDC hyper-parameters entering the cost model.

    Attributes:
        dimension: Hypervector width ``d``.
        iterations: Training passes ``I`` (paper baseline: 20).
        mistake_fraction: Average fraction of samples triggering an
            update per pass; drives the elementwise update traffic.  The
            paper's Fig. 4 curves imply ~0.15-0.3 averaged over 20
            passes.
        chunk_size: Host update mini-batch (kernel dispatch granularity).
    """

    dimension: int = 10_000
    iterations: int = 20
    mistake_fraction: float = 0.2
    chunk_size: int = 64

    def __post_init__(self) -> None:
        if self.dimension < 1 or self.iterations < 1 or self.chunk_size < 1:
            raise ValueError("dimension, iterations, chunk_size must be >= 1")
        if not 0.0 <= self.mistake_fraction <= 1.0:
            raise ValueError(
                f"mistake_fraction must be in [0, 1], got {self.mistake_fraction}"
            )


@dataclass(frozen=True)
class PhaseBreakdown:
    """Seconds per training phase (the bars of the paper's Fig. 5).

    Attributes:
        encode: Training-set encoding time.
        update: Class-hypervector update time (host CPU).
        modelgen: TFLite generation + Edge TPU compile + model load
            (zero for the CPU baseline).
    """

    encode: float
    update: float
    modelgen: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end training time."""
        return self.encode + self.update + self.modelgen

    def speedup_over(self, baseline: "PhaseBreakdown") -> float:
        """``baseline.total / self.total``."""
        if self.total == 0:
            raise ZeroDivisionError("cannot compute speedup of zero runtime")
        return baseline.total / self.total


# Calibrated model-generation cost: TFLite file generation plus
# ``edgetpu_compiler`` run plus device load, as a function of parameter
# count.  DESIGN.md section 2 records the calibration.
_MODELGEN_FIXED_S = 0.3
_MODELGEN_S_PER_PARAM = 0.15e-6


class CostModel:
    """Phase-cost calculator for one host/accelerator pairing.

    Args:
        host: Host CPU platform model (defaults to the paper's mobile
            i5 class).
        tpu: Edge TPU platform model (defaults to the standard USB
            device).
        train_batch: Samples per Edge TPU invocation during training-set
            encoding (offline batching).
        inference_batch: Samples per invocation at inference (the paper
            measures the real-time setting: 1).
    """

    def __init__(self, host: Platform | None = None,
                 tpu: EdgeTpuPlatform | None = None,
                 train_batch: int = 256, inference_batch: int = 1):
        if train_batch < 1 or inference_batch < 1:
            raise ValueError("batch sizes must be >= 1")
        self.host = host if host is not None else MobileCpu()
        self.tpu = tpu if tpu is not None else EdgeTpuPlatform()
        self.train_batch = train_batch
        self.inference_batch = inference_batch

    # ------------------------------------------------------------------
    # Phase primitives
    # ------------------------------------------------------------------

    def cpu_encode_seconds(self, num_samples: int, num_features: int,
                           dimension: int,
                           platform: Platform | None = None) -> float:
        """Float encoding ``tanh(X @ B)`` of ``num_samples`` on a CPU."""
        platform = platform if platform is not None else self.host
        return (
            platform.matmul_seconds(num_samples, num_features, dimension)
            + platform.tanh_seconds(num_samples * dimension)
        )

    def tpu_encode_seconds(self, num_samples: int, num_features: int,
                           dimension: int) -> float:
        """Edge TPU encoding: batched invokes of the encoder model.

        Each invocation transfers ``batch * n`` int8 inputs down and
        ``batch * d`` int8 encoded hypervectors back — the output
        transfer is the dominant per-sample cost for hyper-wide ``d``.
        """
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        full_batches, remainder = divmod(num_samples, self.train_batch)
        seconds = full_batches * self.tpu.invoke_seconds(
            [(num_features, dimension)], self.train_batch,
            tanh_after_first=True,
        )
        if remainder:
            seconds += self.tpu.invoke_seconds(
                [(num_features, dimension)], remainder, tanh_after_first=True,
            )
        return seconds

    def update_seconds(self, num_samples: int, dimension: int,
                       num_classes: int, iterations: int,
                       mistake_fraction: float, chunk_size: int,
                       platform: Platform | None = None) -> float:
        """Host class-hypervector update phase over ``iterations`` passes.

        Per pass: one similarity matmul ``(N, d) @ (d, k)``, a row-wise
        argmax, elementwise bundle/detach traffic for the mispredicted
        fraction, and chunked kernel dispatch overheads.
        """
        platform = platform if platform is not None else self.host
        per_pass = platform.matmul_seconds(num_samples, dimension, num_classes)
        per_pass += platform.argmax_seconds(num_samples, num_classes)
        updated = mistake_fraction * num_samples
        # Each update touches two class hypervectors: C_a += lr*E and
        # C_b -= lr*E, i.e. 2*d multiply-adds of streamed traffic.
        per_pass += platform.elementwise_seconds(int(updated * 2 * dimension))
        chunks = -(-num_samples // chunk_size)
        per_pass += platform.call_overhead_seconds(2 * chunks)
        return iterations * per_pass

    def modelgen_seconds(self, parameter_count: int) -> float:
        """TFLite generation + Edge TPU compilation + device load."""
        if parameter_count < 0:
            raise ValueError(
                f"parameter_count must be >= 0, got {parameter_count}"
            )
        return (
            _MODELGEN_FIXED_S
            + parameter_count * _MODELGEN_S_PER_PARAM
            + self.tpu.model_load_seconds(parameter_count)
        )

    # ------------------------------------------------------------------
    # Training (Fig. 5)
    # ------------------------------------------------------------------

    def cpu_training(self, workload: Workload,
                     config: HdcTrainingConfig | None = None,
                     platform: Platform | None = None) -> PhaseBreakdown:
        """The paper's CPU baseline: everything in float on one CPU."""
        config = config if config is not None else HdcTrainingConfig()
        platform = platform if platform is not None else self.host
        encode = self.cpu_encode_seconds(
            workload.num_train, workload.num_features, config.dimension,
            platform,
        )
        update = self.update_seconds(
            workload.num_train, config.dimension, workload.num_classes,
            config.iterations, config.mistake_fraction, config.chunk_size,
            platform,
        )
        return PhaseBreakdown(encode=encode, update=update, modelgen=0.0)

    def tpu_training(self, workload: Workload,
                     config: HdcTrainingConfig | None = None) -> PhaseBreakdown:
        """The TPU baseline (paper's "TPU"): encoding on the Edge TPU."""
        config = config if config is not None else HdcTrainingConfig()
        encode = self.tpu_encode_seconds(
            workload.num_train, workload.num_features, config.dimension,
        )
        update = self.update_seconds(
            workload.num_train, config.dimension, workload.num_classes,
            config.iterations, config.mistake_fraction, config.chunk_size,
        )
        # Encoder model (n x d) for training plus the full inference
        # model (n x d + d x k) generated after training.
        params = (
            workload.num_features * config.dimension
            + workload.num_features * config.dimension
            + config.dimension * workload.num_classes
        )
        return PhaseBreakdown(
            encode=encode, update=update,
            modelgen=self.modelgen_seconds(params),
        )

    def tpu_bagged_training(self, workload: Workload,
                            config: HdcTrainingConfig | None = None,
                            bagging: BaggingConfig | None = None
                            ) -> PhaseBreakdown:
        """The paper's full framework ("TPU_B"): bagging + Edge TPU."""
        config = config if config is not None else HdcTrainingConfig()
        bagging = bagging if bagging is not None else BaggingConfig(
            dimension=config.dimension,
        )
        sub_dim = bagging.effective_sub_dimension
        subset = max(1, int(round(bagging.dataset_ratio * workload.num_train)))
        sub_features = max(
            1, int(round(bagging.feature_ratio * workload.num_features))
        )
        # Encoding: M sub-models, each encoding its alpha-subset at d'.
        encode = sum(
            self.tpu_encode_seconds(subset, sub_features, sub_dim)
            for _ in range(bagging.num_models)
        )
        # Updates: the paper's C' = C * M * (d'/d) * (I'/I) * alpha * beta
        # emerges from charging each sub-model's update phase directly.
        update = bagging.num_models * self.update_seconds(
            subset, sub_dim, workload.num_classes,
            bagging.iterations, config.mistake_fraction, config.chunk_size,
        )
        # Model generation: M encoder models plus the fused inference
        # model (same size as the non-bagged one).
        params = (
            bagging.num_models * sub_features * sub_dim
            + workload.num_features * config.dimension
            + config.dimension * workload.num_classes
        )
        return PhaseBreakdown(
            encode=encode, update=update,
            modelgen=self.modelgen_seconds(params),
        )

    # ------------------------------------------------------------------
    # Inference (Fig. 6)
    # ------------------------------------------------------------------

    def cpu_inference(self, workload: Workload,
                      config: HdcTrainingConfig | None = None,
                      platform: Platform | None = None) -> float:
        """Batched float inference over the test set on a CPU."""
        config = config if config is not None else HdcTrainingConfig()
        platform = platform if platform is not None else self.host
        n_test = workload.num_test
        return (
            self.cpu_encode_seconds(
                n_test, workload.num_features, config.dimension, platform,
            )
            + platform.matmul_seconds(
                n_test, config.dimension, workload.num_classes,
            )
            + platform.argmax_seconds(n_test, workload.num_classes)
        )

    def tpu_inference(self, workload: Workload,
                      config: HdcTrainingConfig | None = None) -> float:
        """Edge TPU inference over the test set at the real-time batch.

        The fused bagged model has exactly the same layer shapes, so the
        paper's "no extra overhead" claim holds by construction here.
        """
        config = config if config is not None else HdcTrainingConfig()
        batch = self.inference_batch
        full_batches, remainder = divmod(workload.num_test, batch)
        layers = [
            (workload.num_features, config.dimension),
            (config.dimension, workload.num_classes),
        ]
        per_invoke = self.tpu.invoke_seconds(layers, batch,
                                             tanh_after_first=True)
        # Host-side argmax fallback per invocation (the CPU tail).
        per_invoke += self.host.argmax_seconds(batch, workload.num_classes)
        seconds = full_batches * per_invoke
        if remainder:
            seconds += (
                self.tpu.invoke_seconds(layers, remainder,
                                        tanh_after_first=True)
                + self.host.argmax_seconds(remainder, workload.num_classes)
            )
        return seconds

    # ------------------------------------------------------------------
    # Derived ratios
    # ------------------------------------------------------------------

    def encoding_speedup(self, num_samples: int, num_features: int,
                         dimension: int = 10_000) -> float:
        """CPU-encode time over TPU-encode time (the paper's Fig. 10)."""
        cpu = self.cpu_encode_seconds(num_samples, num_features, dimension)
        tpu = self.tpu_encode_seconds(num_samples, num_features, dimension)
        return cpu / tpu

    def update_cost_ratio_measured(self, workload: Workload,
                                   config: HdcTrainingConfig | None = None,
                                   bagging: BaggingConfig | None = None
                                   ) -> float:
        """Modeled update-phase ratio baseline/bagged (cf. the paper's 4.74x)."""
        config = config if config is not None else HdcTrainingConfig()
        bagging = bagging if bagging is not None else BaggingConfig(
            dimension=config.dimension,
        )
        baseline = self.cpu_training(workload, config).update
        bagged = self.tpu_bagged_training(workload, config, bagging).update
        return baseline / bagged

    @staticmethod
    def update_cost_ratio_paper(config: HdcTrainingConfig,
                                bagging: BaggingConfig) -> float:
        """The paper's analytic ``C'/C`` for the same configuration."""
        return weight_update_cost_ratio(
            bagging.num_models, bagging.effective_sub_dimension,
            config.dimension, bagging.iterations, config.iterations,
            bagging.dataset_ratio, bagging.feature_ratio,
        )
