"""The co-design pipelines: the paper's Fig. 1 and Fig. 3 flows, end to end.

:class:`TrainingPipeline` runs real data through the full stack:

1. build the encoder half of the wide NN (base hypervectors), quantize
   it, compile it, and load it onto the simulated Edge TPU (``modelgen``
   phase);
2. stream training batches through the device and hand the encoded
   hypervectors back to the host (``encode`` phase, device-modeled
   time plus host dequantization);
3. run mistake-driven class-hypervector updates on the host CPU
   (``update`` phase, charged by the host cost model using the *actual*
   per-pass update counts);
4. build, quantize and compile the full inference model — fused across
   sub-models when bagging is enabled (``modelgen`` phase).

:class:`InferencePipeline` then executes the compiled inference model
sample-batch by sample-batch on the device with the host argmax tail,
exactly the deployment the paper measures in Fig. 6.
"""

from __future__ import annotations

import hashlib
import threading
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.config import PipelineConfig
from repro.edgetpu.arch import EdgeTpuArch
from repro.edgetpu.compiler import CompiledModel, compile_model
from repro.edgetpu.device import EdgeTpuDevice
from repro.edgetpu.multidevice import DevicePool
from repro.hdc.bagging import (
    BaggingConfig,
    FusedHDCModel,
    draw_bootstrap_subset,
    draw_feature_mask,
)
from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.model import HDCClassifier, TrainingHistory
from repro.nn.builder import encoder_network, inference_network
from repro.platforms.base import Platform
from repro.platforms.cpu import MobileCpu
from repro.runtime.costs import CostModel, HdcTrainingConfig
from repro.runtime.executor import (
    ExecutorConfig,
    MicroBatchDispatcher,
    ParallelReport,
    WorkerPool,
    cpu_op_seconds,
    spawn_rngs,
)
from repro.observability.trace import Tracer
from repro.runtime.profiler import PhaseProfiler
from repro.tflite.converter import convert
from repro.tflite.flatmodel import FlatModel

__all__ = [
    "CompileCache",
    "InferencePipeline",
    "PipelineResult",
    "TrainingPipeline",
]

_CALIBRATION_SAMPLES = 256


class CompileCache:
    """Content-addressed cache of converted + compiled models.

    The cache key is a blake2b digest over everything that determines
    the compiled artifact: the network's layer structure and weight
    bytes, the calibration samples (they set the quantization grids),
    the :class:`EdgeTpuArch` parameters, and the model name.  Changing
    any of these invalidates the entry; identical encoder networks —
    repeated runs, or bagging sub-models that happen to share weights —
    skip the convert + compile work entirely.

    Attributes:
        hits: Number of lookups served from the cache.
        misses: Number of lookups that had to convert + compile.
    """

    def __init__(self):
        self._entries: dict[str, tuple[FlatModel, CompiledModel]] = {}
        self.hits = 0
        self.misses = 0
        # One pipeline cache may be shared by concurrent sub-model
        # training tasks (the worker pool); serialize lookups so the
        # entry dict and hit/miss counters stay coherent.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(network, calibration: np.ndarray, arch: EdgeTpuArch,
            name: str = "") -> str:
        """Content hash of one (network, calibration, arch) compilation."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(repr(arch).encode())
        digest.update(name.encode())
        digest.update(str(network.input_dim).encode())
        samples = np.ascontiguousarray(calibration, dtype=np.float32)
        digest.update(str(samples.shape).encode())
        digest.update(samples.tobytes())
        for layer in network.layers:
            digest.update(type(layer).__name__.encode())
            digest.update(str(getattr(layer, "kind", "")).encode())
            for attr in ("weights", "bias"):
                tensor = getattr(layer, attr, None)
                if tensor is None:
                    continue
                tensor = np.ascontiguousarray(tensor)
                digest.update(
                    f"{attr}:{tensor.dtype}:{tensor.shape}".encode()
                )
                digest.update(tensor.tobytes())
        return digest.hexdigest()

    def get_or_compile(self, network, calibration: np.ndarray,
                       arch: EdgeTpuArch, name: str
                       ) -> tuple[FlatModel, CompiledModel, bool]:
        """Return ``(flat, compiled, was_cached)`` for the network."""
        key = self.key(network, calibration, arch, name)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                return entry[0], entry[1], True
            flat = convert(network, calibration, name=name)
            compiled = compile_model(flat, arch)
            self._entries[key] = (flat, compiled)
            self.misses += 1
            return flat, compiled, False


@dataclass
class PipelineResult:
    """Everything a training run produces.

    Attributes:
        inference_model: The quantized full inference model (fused when
            bagging was used).
        compiled: The Edge TPU compilation of that model.
        fused: The float fused HDC model (base + class matrices).
        classifiers: The trained sub-model classifiers (one entry when
            bagging is off).
        histories: Per-classifier training histories.
        profiler: Phase-time accounting for the whole run.
        parallel: Worker-pool accounting for bagged training (per-task
            seconds, modeled makespan); ``None`` for non-bagged runs.
    """

    inference_model: FlatModel
    compiled: CompiledModel
    fused: FusedHDCModel
    classifiers: list[HDCClassifier]
    histories: list[TrainingHistory]
    profiler: PhaseProfiler
    parallel: ParallelReport | None = None

    @property
    def trace(self) -> Tracer | None:
        """The run's span trace (``None`` unless tracing was enabled)."""
        tracer = self.profiler.tracer
        return tracer if tracer.enabled else None

    def summary(self) -> dict:
        """Machine-readable run report (see docs/architecture.md schema).

        Durations are seconds with an ``_s`` suffix; the canonical
        phase map sits under ``"phases"`` exactly as
        :meth:`PhaseProfiler.breakdown` returns it.
        """
        payload = {
            "schema": "repro.train/1",
            "total_s": self.profiler.total,
            "phases": self.profiler.breakdown(),
            "num_submodels": len(self.classifiers),
            "weight_bytes": self.compiled.weight_bytes,
        }
        if self.parallel is not None:
            payload["parallel"] = {
                "workers": self.parallel.workers,
                "backend": self.parallel.backend,
                "makespan_s": self.parallel.makespan_seconds,
                "serial_s": self.parallel.serial_seconds,
                "speedup": self.parallel.speedup,
            }
        return payload


@dataclass
class InferenceResult:
    """Output of an inference run over a test set.

    Attributes:
        predictions: int64 class indices.
        seconds: Modeled time (device + host tail).
        accuracy: Mean accuracy when labels were supplied, else None.
    """

    predictions: np.ndarray
    seconds: float
    accuracy: float | None = None
    breakdown: dict = field(default_factory=dict)
    trace: Tracer | None = None

    @property
    def throughput(self) -> float:
        """Modeled samples per second over the run."""
        if self.seconds <= 0:
            return 0.0
        return len(self.predictions) / self.seconds

    def summary(self) -> dict:
        """Machine-readable run report (see docs/architecture.md schema)."""
        payload = {
            "schema": "repro.infer/1",
            "samples": len(self.predictions),
            "total_s": self.seconds,
            "throughput_rps": self.throughput,
            "breakdown": dict(self.breakdown),
        }
        if self.accuracy is not None:
            payload["accuracy"] = self.accuracy
        return payload


class TrainingPipeline:
    """Trains an HDC model with Edge TPU encoding and host updates.

    The supported constructor takes one validated
    :class:`~repro.config.PipelineConfig`::

        TrainingPipeline(PipelineConfig(dimension=4096, seed=7))

    or, equivalently, ``TrainingPipeline(config=...)``.  The historical
    keyword sprawl (``dimension=``, ``iterations=``, ...) still works
    through a shim that builds the config for you and emits a
    :class:`DeprecationWarning`.

    Args:
        config: The full training configuration (see
            :class:`~repro.config.PipelineConfig` for every knob,
            including ``executor`` parallelism and ``tracing``).
        compile_cache: A :class:`CompileCache` to reuse compiled models
            across runs (pass one instance to several pipelines to share
            it); each pipeline gets its own private cache by default.
            An operational resource, not configuration — hence not part
            of the config object.
    """

    def __init__(self, dimension=None, iterations=None, bagging=None,
                 host=None, arch=None, learning_rate=None, train_batch=None,
                 seed=None, compile_cache: CompileCache | None = None,
                 executor=None, *, config: PipelineConfig | None = None):
        if isinstance(dimension, PipelineConfig):
            if config is not None:
                raise TypeError("pass the config positionally or as "
                                "config=, not both")
            config = dimension
            dimension = None
        legacy = {
            key: value for key, value in {
                "dimension": dimension,
                "iterations": iterations,
                "bagging": bagging,
                "host": host,
                "arch": arch,
                "learning_rate": learning_rate,
                "train_batch": train_batch,
                "seed": seed,
                "executor": executor,
            }.items() if value is not None
        }
        if config is None:
            if legacy:
                warnings.warn(
                    "keyword construction of TrainingPipeline is "
                    "deprecated; pass a repro.config.PipelineConfig "
                    "(or use repro.api.train)",
                    DeprecationWarning, stacklevel=2,
                )
            config = PipelineConfig(**legacy)
        elif legacy:
            raise TypeError(
                "pass either a PipelineConfig or legacy keywords, not both"
            )
        self.config = config
        self.dimension = config.dimension
        self.iterations = config.iterations
        self.bagging = config.bagging
        self.host = config.host if config.host is not None else MobileCpu()
        self.arch = config.arch if config.arch is not None else EdgeTpuArch()
        self.learning_rate = config.learning_rate
        self.train_batch = config.train_batch
        self._rng = np.random.default_rng(config.seed)
        self._costs = CostModel(host=self.host,
                                train_batch=config.train_batch)
        self.compile_cache = (
            compile_cache if compile_cache is not None else CompileCache()
        )
        self.executor = config.executor
        self.tracing = config.tracing

    # ------------------------------------------------------------------

    def run(self, train_x: np.ndarray, train_y: np.ndarray,
            num_classes: int | None = None) -> PipelineResult:
        """Execute the full training flow on materialized data."""
        train_x = np.asarray(train_x, dtype=np.float32)
        train_y = np.asarray(train_y, dtype=np.int64)
        if train_x.ndim != 2:
            raise ValueError(f"expected 2-D samples, got shape {train_x.shape}")
        if len(train_x) != len(train_y):
            raise ValueError(f"{len(train_x)} samples but {len(train_y)} labels")
        if num_classes is None:
            num_classes = int(train_y.max()) + 1

        profiler = PhaseProfiler(Tracer(enabled=self.tracing))
        parallel = None
        with profiler.tracer.span(
            "pipeline.train", samples=len(train_x),
            dimension=self.dimension, num_classes=num_classes,
        ):
            if self.bagging is None:
                classifiers, histories = self._train_single(
                    train_x, train_y, num_classes, profiler,
                )
            else:
                classifiers, histories, parallel = self._train_bagged(
                    train_x, train_y, num_classes, profiler,
                )

            fused = self._fuse(classifiers, num_classes)
            inference_model, compiled = self._deploy_inference_model(
                fused, train_x, profiler,
            )
        return PipelineResult(
            inference_model=inference_model,
            compiled=compiled,
            fused=fused,
            classifiers=classifiers,
            histories=histories,
            profiler=profiler,
            parallel=parallel,
        )

    # ------------------------------------------------------------------
    # Internal stages
    # ------------------------------------------------------------------

    def _train_single(self, train_x, train_y, num_classes, profiler):
        encoder = NonlinearEncoder(
            train_x.shape[1], self.dimension, seed=self._rng,
        )
        encoded = self._encode_on_device(encoder, train_x, train_x, profiler)
        classifier = HDCClassifier(
            dimension=self.dimension, encoder=encoder,
            learning_rate=self.learning_rate, seed=self._rng,
        )
        history = classifier.fit(
            encoded, train_y, iterations=self.iterations,
            num_classes=num_classes, encoded=True,
        )
        self._charge_update(history, self.dimension, num_classes, profiler)
        return [classifier], [history]

    def _train_bagged(self, train_x, train_y, num_classes, profiler):
        """Train the bagging sub-models, concurrently when configured.

        Each sub-model task draws all of its randomness from a child
        generator spawned from the pipeline seed and accumulates its
        phase charges on a private profiler; charges merge into the
        run profiler in task order afterwards.  Both choices make the
        result — weights *and* phase totals — bit-identical for any
        worker count.  Tasks close over shared pipeline state (compile
        cache, cost model), so the pool is always thread-backed here.
        """
        config = self.bagging
        subset_size = max(1, int(round(config.dataset_ratio * len(train_x))))
        kept = max(
            1, int(round(config.feature_ratio * train_x.shape[1]))
        )
        tracing = profiler.tracer.enabled

        def train_one(rng):
            local = PhaseProfiler(Tracer(enabled=tracing))
            indices = draw_bootstrap_subset(
                rng, len(train_x), subset_size, config.replace,
            )
            mask = draw_feature_mask(rng, train_x.shape[1], kept)
            encoder = NonlinearEncoder(
                train_x.shape[1], config.effective_sub_dimension,
                seed=rng,
                feature_mask=None if mask.all() else mask,
            )
            encoded = self._encode_on_device(
                encoder, train_x[indices], train_x, local,
            )
            classifier = HDCClassifier(
                dimension=config.effective_sub_dimension, encoder=encoder,
                learning_rate=config.learning_rate,
                chunk_size=config.chunk_size, seed=rng,
            )
            history = classifier.fit(
                encoded, train_y[indices], iterations=config.iterations,
                num_classes=num_classes, encoded=True,
            )
            self._charge_update(
                history, config.effective_sub_dimension, num_classes, local,
            )
            return classifier, history, local

        pool = WorkerPool(self.executor.workers, backend="thread")
        results = pool.map(train_one, spawn_rngs(self._rng, config.num_models))
        for index, (_, _, local) in enumerate(results):
            profiler.absorb(local, f"submodel[{index}]",
                            sub_dimension=config.effective_sub_dimension)
        classifiers = [classifier for classifier, _, _ in results]
        histories = [history for _, history, _ in results]
        return classifiers, histories, pool.last_report

    def _encode_on_device(self, encoder, samples, calibration, profiler):
        """Compile the encoder model, stream ``samples`` through the device.

        Returns float32 encoded hypervectors (dequantized on the host,
        charged under ``encode``).
        """
        network = encoder_network(encoder)
        flat, compiled, cached = self.compile_cache.get_or_compile(
            network, calibration[:_CALIBRATION_SAMPLES], self.arch, "encoder",
        )
        device = EdgeTpuDevice(self.arch)
        cache_tag = ("cache_hit",) if cached else ()
        # A cache hit skips the host-side generation cost but the device
        # still has to load the (cached) compiled model.
        if not cached:
            profiler.charge("modelgen", self._modelgen_seconds(flat, compiled),
                            name="modelgen.compile", model="encoder")
        profiler.charge("modelgen", device.load_model(compiled),
                        name="device.load", tags=cache_tag, model="encoder",
                        bytes_in=compiled.model.size_bytes())

        quantized_in = flat.input_spec.qparams.quantize(samples)
        pieces = []
        with profiler.tracer.span("encode", phase="encode",
                                  samples=len(samples)):
            for start in range(0, len(samples), self.train_batch):
                result = device.invoke(
                    quantized_in[start:start + self.train_batch]
                )
                profiler.charge("encode", result.elapsed_s,
                                name="device.invoke", device=0,
                                batch=len(result.outputs),
                                bytes_in=result.bytes_in,
                                bytes_out=result.bytes_out)
                pieces.append(result.outputs)
            encoded_q = np.vstack(pieces)
            # Host-side dequantization of the returned hypervectors.
            out_qparams = compiled.tpu_ops[-1].output_qparams
            profiler.charge(
                "encode", self.host.elementwise_seconds(encoded_q.size),
                name="host.dequantize", elements=encoded_q.size,
            )
        return out_qparams.dequantize(encoded_q)

    def _charge_update(self, history, dimension, num_classes, profiler):
        """Charge the host update phase from measured per-pass statistics."""
        for iteration, (samples, updates) in enumerate(
                zip(history.samples_seen, history.updates)):
            mistake_fraction = updates / max(1, samples)
            profiler.charge("update", self._costs.update_seconds(
                samples, dimension, num_classes, iterations=1,
                mistake_fraction=mistake_fraction,
                chunk_size=64, platform=self.host,
            ), name="host.update", iteration=iteration, samples=samples,
                updates=updates)

    def _fuse(self, classifiers, num_classes) -> FusedHDCModel:
        base = np.hstack([c.encoder.base_hypervectors for c in classifiers])
        class_matrix = np.vstack([c.class_hypervectors.T for c in classifiers])
        return FusedHDCModel(
            base_matrix=base.astype(np.float32, copy=False),
            class_matrix=class_matrix.astype(np.float32, copy=False),
            num_classes=num_classes,
            sub_widths=[c.dimension for c in classifiers],
        )

    def _deploy_inference_model(self, fused, calibration, profiler):
        network = inference_network(
            fused.base_matrix, fused.class_matrix, include_argmax=True,
            name="hdc-inference",
        )
        flat, compiled, cached = self.compile_cache.get_or_compile(
            network, calibration[:_CALIBRATION_SAMPLES], self.arch,
            "hdc-inference",
        )
        if not cached:
            profiler.charge("modelgen", self._modelgen_seconds(flat, compiled),
                            name="modelgen.compile", model="hdc-inference")
        elif profiler.tracer:
            profiler.tracer.add(
                "modelgen.compile", profiler.tracer.cursor_s,
                profiler.tracer.cursor_s, tags=("cache_hit",),
                model="hdc-inference",
            )
        return flat, compiled

    def _modelgen_seconds(self, flat: FlatModel, compiled: CompiledModel
                          ) -> float:
        """Host-side model generation cost (quantize + serialize + compile).

        ``CostModel.modelgen_seconds`` includes the device load, which
        the pipeline charges separately from the actual device model;
        the difference is clamped at zero so a cost model whose load
        estimate exceeds its generation estimate (tiny models) can never
        produce a negative charge — ``VirtualClock.charge`` rejects it.
        """
        return max(
            0.0,
            self._costs.modelgen_seconds(compiled.weight_bytes)
            - self._costs.tpu.model_load_seconds(compiled.weight_bytes),
        )


class InferencePipeline:
    """Runs a compiled inference model on the device (paper Fig. 6 setup).

    Args:
        compiled: The compiled inference model from a
            :class:`TrainingPipeline` result.
        host: Host CPU model charging the argmax fallback.
        batch: Samples per invocation (1 = the paper's real-time mode).
        executor: Parallelism knobs.  With ``num_devices > 1`` or an
            explicit ``micro_batch``, requests go through the
            :class:`~repro.runtime.executor.MicroBatchDispatcher` over
            a replicated :class:`~repro.edgetpu.multidevice.DevicePool`
            (host tail overlapped with device dispatch); the default
            keeps the original single-device sequential loop.
        tracing: Record a span per device invocation and host-tail op;
            the trace rides on :attr:`InferenceResult.trace`.
    """

    def __init__(self, compiled: CompiledModel, host: Platform | None = None,
                 batch: int = 1, executor: ExecutorConfig | int | None = None,
                 tracing: bool = False):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.compiled = compiled
        self.host = host if host is not None else MobileCpu()
        self.batch = batch
        self.executor = ExecutorConfig.coerce(executor)
        self.tracing = tracing
        self.dispatcher: MicroBatchDispatcher | None = None
        if self.executor.num_devices > 1 or \
                self.executor.micro_batch is not None:
            pool = DevicePool(self.executor.num_devices, compiled.arch)
            self.model_load_seconds = pool.load_replicated(compiled)
            self.dispatcher = MicroBatchDispatcher(
                pool, host=self.host,
                micro_batch=self.executor.micro_batch or batch,
                placement="replicate",
            )
            self.device = pool.devices[0]
        else:
            self.device = EdgeTpuDevice(compiled.arch)
            self.model_load_seconds = self.device.load_model(compiled)

    def run(self, test_x: np.ndarray,
            test_y: np.ndarray | None = None) -> InferenceResult:
        """Classify ``test_x``; returns predictions with modeled timing."""
        test_x = np.asarray(test_x, dtype=np.float32)
        if test_x.ndim != 2:
            raise ValueError(f"expected 2-D samples, got shape {test_x.shape}")
        tracer = Tracer(enabled=True) if self.tracing else None
        if self.dispatcher is not None:
            dispatched = self.dispatcher.dispatch(test_x, test_y,
                                                  tracer=tracer)
            return InferenceResult(
                predictions=dispatched.predictions,
                seconds=dispatched.makespan_seconds,
                accuracy=dispatched.accuracy,
                breakdown=dict(dispatched.breakdown),
                trace=tracer,
            )
        model = self.compiled.model
        quantized = model.input_spec.qparams.quantize(test_x)
        seconds = 0.0
        predictions = np.empty(len(test_x), dtype=np.int64)
        tail_width = self.compiled.plans[-1].output_dim
        root = (tracer.add("pipeline.infer", 0.0, 0.0,
                           samples=len(test_x), batch=self.batch)
                if tracer else None)
        for start in range(0, len(test_x), self.batch):
            chunk = quantized[start:start + self.batch]
            result = self.device.invoke(chunk)
            if tracer:
                tracer.add("device.invoke", seconds,
                           seconds + result.elapsed_s, parent_id=root,
                           phase="inference", device=0, batch=len(chunk),
                           elapsed_s=result.elapsed_s,
                           bytes_in=result.bytes_in,
                           bytes_out=result.bytes_out)
            seconds += result.elapsed_s
            out = result.outputs
            width = tail_width
            for op in self.compiled.cpu_ops:
                cost = self._cpu_op_seconds(op, len(chunk), width)
                if tracer:
                    tracer.add(f"host.{op.kind.lower()}", seconds,
                               seconds + cost, parent_id=root,
                               phase="inference", batch=len(chunk))
                seconds += cost
                out = op.run(out)
                width = op.output_dim(width)
            if model.output_is_index:
                predictions[start:start + self.batch] = out[:, 0]
            else:
                predictions[start:start + self.batch] = np.argmax(out, axis=-1)
        if tracer:
            tracer.finish(root, seconds)
            tracer.advance(seconds)
        accuracy = None
        if test_y is not None:
            test_y = np.asarray(test_y, dtype=np.int64)
            if len(test_y) != len(predictions):
                raise ValueError(
                    f"{len(predictions)} predictions but {len(test_y)} labels"
                )
            accuracy = float(np.mean(predictions == test_y))
        return InferenceResult(
            predictions=predictions, seconds=seconds, accuracy=accuracy,
            breakdown=dict(self.device.stats.breakdown),
            trace=tracer,
        )

    def _cpu_op_seconds(self, op, rows: int, width: int) -> float:
        """Host cost of one CPU-fallback op, charged by its actual kind."""
        return cpu_op_seconds(self.host, op, rows, width)
