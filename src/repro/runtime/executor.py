"""Parallel execution layer: worker pools and the inference dispatcher.

Two independence structures in the paper's design are exploitable for
parallelism, and this module exploits both:

- **Training**: the ``M`` bagging sub-models are trained on independent
  bootstrap subsets (Sec. III-B) — :class:`WorkerPool` runs the
  sub-model training tasks concurrently on a ``concurrent.futures``
  pool, thread- or process-backed.  Determinism is preserved by seed
  *spawning*: each sub-model draws every random quantity from its own
  child generator spawned from one :class:`numpy.random.SeedSequence`
  root, so the trained weights are bit-identical for any worker count
  (``workers=1`` runs the same tasks sequentially in-process).
- **Inference**: a request stream is independent sample-by-sample —
  :class:`MicroBatchDispatcher` splits it into micro-batches,
  round-robins them across a :class:`~repro.edgetpu.multidevice.DevicePool`
  (replicated fused model, or one sub-model shard per device), and
  overlaps the host dequantize/argmax tail of batch ``j`` with the
  device dispatch of batch ``j+1``.

Timing model (consistent with the rest of the repo, where every
reported runtime is a virtual-clock reading): per-task/per-batch costs
are modeled or measured individually, and the parallel wall time is the
*makespan* of list-scheduling those costs onto ``workers`` (or
``num_devices``) lanes.  :func:`simulate_makespan` is that scheduler;
on a machine with fewer physical cores than workers the measured wall
time degrades gracefully while the modeled makespan stays deterministic
and machine-independent.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # imports would cycle back through the model builders
    from repro.edgetpu.multidevice import DevicePool
    from repro.platforms.base import Platform

__all__ = [
    "DispatchResult",
    "ExecutorConfig",
    "MicroBatchDispatcher",
    "ParallelReport",
    "SharedArray",
    "WorkerPool",
    "cpu_op_seconds",
    "resolve_shared",
    "run_host_tail",
    "simulate_makespan",
    "spawn_rngs",
]

_BACKENDS = ("thread", "process")
_PLACEMENTS = ("replicate", "shard")


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs for the parallel execution layer.

    The defaults reproduce the sequential single-device behavior the
    pipelines had before this layer existed, so existing callers are
    unaffected until they opt in.

    Attributes:
        workers: Concurrent sub-model training tasks.  ``1`` trains
            sequentially in-process (no pool is created).
        backend: ``"thread"`` or ``"process"``.  Threads share memory
            (required when tasks close over shared state such as a
            :class:`~repro.runtime.pipeline.CompileCache`); processes
            sidestep the GIL for pure-Python hot loops.
        micro_batch: Samples per inference micro-batch handed to one
            device; ``None`` lets the caller's batch size stand.
        num_devices: Inference device-pool size.
        placement: ``"replicate"`` (the fused model on every device,
            data parallel) or ``"shard"`` (one sub-model per device,
            model parallel).
    """

    workers: int = 1
    backend: str = "thread"
    micro_batch: int | None = None
    num_devices: int = 1
    placement: str = "replicate"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.micro_batch is not None and self.micro_batch < 1:
            raise ValueError(
                f"micro_batch must be >= 1, got {self.micro_batch}"
            )
        if self.num_devices < 1:
            raise ValueError(
                f"num_devices must be >= 1, got {self.num_devices}"
            )
        if self.placement not in _PLACEMENTS:
            raise ValueError(
                f"placement must be one of {_PLACEMENTS}, "
                f"got {self.placement!r}"
            )

    @classmethod
    def coerce(cls, value) -> "ExecutorConfig":
        """Normalize ``None`` / int worker count / config to a config."""
        if value is None:
            return cls()
        if isinstance(value, int):
            return cls(workers=value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"expected ExecutorConfig, int or None, got {type(value).__name__}"
        )


def spawn_rngs(seed, n: int) -> list:
    """Spawn ``n`` independent child generators from one seed root.

    This is the determinism contract of the parallel training path:
    child streams depend only on the root seed and the child *index*,
    never on which worker runs the task or in what order — so training
    results are bit-identical for any worker count.

    Args:
        seed: An int, ``None``, a :class:`numpy.random.SeedSequence`, or
            a :class:`numpy.random.Generator`.  Generators spawn through
            their own seed sequence (advancing their spawn counter, so
            successive calls yield fresh, still-deterministic children).
        n: Number of children.

    Returns:
        List of ``n`` :class:`numpy.random.Generator` instances.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(n))
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


def simulate_makespan(task_seconds, workers: int) -> float:
    """List-schedule task costs onto ``workers`` lanes; return makespan.

    Tasks are assigned in order, each to the earliest-available lane —
    the same greedy policy a ``concurrent.futures`` pool follows when
    every worker draws the next pending task.  For ``workers=1`` this
    is the serial sum; for equal-cost tasks it is
    ``ceil(len(tasks) / workers)`` rounds.

    Args:
        task_seconds: Per-task cost, in task order.
        workers: Number of parallel lanes.

    Returns:
        Modeled parallel wall seconds (0.0 for no tasks).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    costs = [float(s) for s in task_seconds]
    if any(s < 0 for s in costs):
        raise ValueError("task costs must be >= 0")
    lanes = [0.0] * min(workers, max(1, len(costs)))
    for cost in costs:
        lane = min(range(len(lanes)), key=lanes.__getitem__)
        lanes[lane] += cost
    return max(lanes) if costs else 0.0


@dataclass(frozen=True)
class ParallelReport:
    """Accounting for one :meth:`WorkerPool.map` run.

    Attributes:
        workers: Configured worker count.
        backend: Pool backend actually used.
        task_seconds: Measured wall seconds per task (task order).
        wall_seconds: Measured wall seconds for the whole map call on
            *this* machine (subject to its physical core count).
    """

    workers: int
    backend: str
    task_seconds: tuple
    wall_seconds: float

    @property
    def serial_seconds(self) -> float:
        """Sum of per-task costs — the 1-worker wall time."""
        return sum(self.task_seconds)

    @property
    def makespan_seconds(self) -> float:
        """Modeled parallel wall time (list-scheduled onto the lanes)."""
        return simulate_makespan(self.task_seconds, self.workers)

    @property
    def speedup(self) -> float:
        """Modeled speedup of the pool over serial execution."""
        makespan = self.makespan_seconds
        return self.serial_seconds / makespan if makespan > 0 else 1.0


def _timed_call(fn, task):
    """Run ``fn(task)`` returning ``(result, wall_seconds)`` (picklable)."""
    start = time.perf_counter()
    result = fn(task)
    return result, time.perf_counter() - start


class SharedArray:
    """A read-only numpy array in shared memory, picklable by name.

    Process-backed :class:`WorkerPool` tasks that carry the same large
    array (e.g. the bagging training set, shipped to every sub-model
    task) pay a pickle/unpickle of the full buffer *per task*.  Wrapping
    the array in a :class:`SharedArray` ships only ``(name, shape,
    dtype)``; workers attach to the one shared segment and view it
    zero-copy.

    Lifecycle: the creating process calls :meth:`create`, passes the
    handle into its tasks, and calls :meth:`unlink` once the pool has
    drained — the segment is then reclaimed as soon as the last
    attached process drops its mapping.  Workers only ever attach.
    CPython (until 3.13's ``track=False``) registers attachments and
    creations alike with the ``resource_tracker``; spawned workers
    share the parent's tracker, whose name cache is a set, so the
    worker's duplicate registration is a no-op and the creator's
    :meth:`unlink` settles the single entry.

    Treat the contents as immutable: every attacher sees the same
    memory.
    """

    __slots__ = ("name", "shape", "dtype", "_shm", "_view")

    def __init__(self, name: str, shape: tuple, dtype: str):
        self.name = name
        self.shape = tuple(shape)
        self.dtype = dtype
        self._shm = None
        self._view = None

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh shared segment; returns the handle.

        Raises:
            OSError: When shared memory is unavailable (callers should
                fall back to plain in-task arrays).
        """
        from multiprocessing import shared_memory
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(1, array.nbytes))
        handle = cls(shm.name, array.shape, str(array.dtype))
        handle._shm = shm
        handle._view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=shm.buf)
        handle._view[...] = array
        return handle

    def array(self) -> np.ndarray:
        """The shared buffer as an ndarray (attaching on first call)."""
        if self._view is None:
            from multiprocessing import shared_memory
            # Attaching re-registers the name with the (shared, inherited)
            # resource tracker; the cache is a set, so this dedupes and the
            # creator's unlink() settles the one entry.  Explicitly
            # unregistering here would strip the creator's registration.
            shm = shared_memory.SharedMemory(name=self.name)
            self._shm = shm
            self._view = np.ndarray(self.shape, dtype=self.dtype,
                                    buffer=shm.buf)
        return self._view

    def unlink(self) -> None:
        """Destroy the segment (creator side); safe to call twice."""
        if self._shm is not None:
            view, self._view = self._view, None
            del view
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:
                pass
            self._shm = None

    def __reduce__(self):
        # Workers rebuild a detached handle and re-attach lazily.
        return (SharedArray, (self.name, self.shape, self.dtype))

    def __repr__(self) -> str:
        return (f"SharedArray(name={self.name!r}, shape={self.shape}, "
                f"dtype={self.dtype})")


def resolve_shared(value):
    """``SharedArray`` -> attached ndarray; anything else passes through."""
    if isinstance(value, SharedArray):
        return value.array()
    return value


class WorkerPool:
    """Ordered map over tasks on a thread/process pool.

    Results come back in task order regardless of completion order, and
    each task's wall time is measured for the :class:`ParallelReport`
    (the modeled-makespan side of the accounting).

    Args:
        workers: Concurrent tasks; ``1`` executes a plain loop.
        backend: ``"thread"`` or ``"process"``.  The process backend
            requires the mapped function and its tasks to be picklable
            (module-level functions, array/dataclass payloads).
    """

    def __init__(self, workers: int = 1, backend: str = "thread"):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.workers = workers
        self.backend = backend
        self.last_report: ParallelReport | None = None

    def map(self, fn, tasks) -> list:
        """Apply ``fn`` to every task; return results in task order."""
        tasks = list(tasks)
        start = time.perf_counter()
        if self.workers == 1 or len(tasks) <= 1:
            timed = [_timed_call(fn, task) for task in tasks]
        else:
            call = partial(_timed_call, fn)
            pool_cls = (
                concurrent.futures.ThreadPoolExecutor
                if self.backend == "thread"
                else concurrent.futures.ProcessPoolExecutor
            )
            with pool_cls(max_workers=min(self.workers, len(tasks))) as pool:
                timed = list(pool.map(call, tasks))
        wall = time.perf_counter() - start
        self.last_report = ParallelReport(
            workers=self.workers,
            backend=self.backend if self.workers > 1 else "serial",
            task_seconds=tuple(seconds for _, seconds in timed),
            wall_seconds=wall,
        )
        return [result for result, _ in timed]


def cpu_op_seconds(host: Platform, op, rows: int, width: int) -> float:
    """Host cost of one CPU-fallback op, charged by its actual kind."""
    if op.kind == "ARGMAX":
        return host.argmax_seconds(rows, width)
    if op.kind == "TANH":
        return host.tanh_seconds(rows * width)
    if op.kind == "FULLY_CONNECTED":
        return host.matmul_seconds(rows, width, op.output_dim(width))
    # Dequantize/requantize-style tails: plain elementwise traffic.
    return host.elementwise_seconds(rows * width)


def run_host_tail(compiled, outputs: np.ndarray,
                  host: "Platform") -> tuple[np.ndarray, float]:
    """Run a compiled model's CPU tail on device outputs.

    Executes the trailing ``cpu_ops`` (for the paper's models, the
    final ARGMAX) on the host and reduces to per-sample class
    predictions, charging each op by its actual kind plus the final
    argmax for models whose last op emits activations.  This is the one
    implementation of the device→host hand-off shared by the
    micro-batch dispatcher and the serving event loop, so their modeled
    tails can never drift apart.

    Returns:
        ``(predictions, seconds)`` — int64 class indices for the rows
        of ``outputs``, and the modeled host seconds.
    """
    rows = len(outputs)
    width = compiled.plans[-1].output_dim
    out = outputs
    seconds = 0.0
    for op in compiled.cpu_ops:
        seconds += cpu_op_seconds(host, op, rows, width)
        out = op.run(out)
        width = op.output_dim(width)
    if compiled.model.output_is_index:
        predictions = out[:, 0]
    else:
        seconds += host.argmax_seconds(rows, width)
        predictions = np.argmax(out, axis=-1)
    return predictions, seconds


@dataclass
class DispatchResult:
    """Outcome of one :meth:`MicroBatchDispatcher.dispatch` call.

    Attributes:
        predictions: int64 class indices, in input order.
        scores: Host-aggregated float scores (sharded placement only).
        samples: Number of samples dispatched (0 for an idle queue).
        num_batches: Micro-batches issued.
        makespan_seconds: Modeled wall time with device/host overlap —
            the dispatcher's "inference latency" for the whole stream.
        device_seconds: Per-device busy seconds (no overlap credit).
        device_idle_seconds: Per-device idle seconds over the dispatch
            makespan (``makespan - busy``, clamped at 0), so device
            utilization is computable from the result alone.
        host_seconds: Host busy seconds (dequantize / aggregate / argmax).
        serial_seconds: What the same work would cost with one device
            and no overlap — the speedup baseline.
        accuracy: Mean accuracy when labels were supplied (``None`` for
            an empty stream).
    """

    predictions: np.ndarray
    scores: np.ndarray | None
    samples: int
    num_batches: int
    makespan_seconds: float
    device_seconds: list[float]
    host_seconds: float
    serial_seconds: float
    device_idle_seconds: list[float] = field(default_factory=list)
    accuracy: float | None = None
    breakdown: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Modeled samples per second over the whole stream."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.samples / self.makespan_seconds

    @property
    def speedup(self) -> float:
        """Modeled speedup over serial single-device execution."""
        if self.makespan_seconds <= 0:
            return 1.0
        return self.serial_seconds / self.makespan_seconds

    @property
    def utilization(self) -> float:
        """Fraction of pooled device time spent busy (0 when idle)."""
        busy = sum(self.device_seconds)
        total = busy + sum(self.device_idle_seconds)
        return busy / total if total > 0 else 0.0


class MicroBatchDispatcher:
    """Micro-batched inference across a device pool, with overlap.

    Two placements:

    - ``"replicate"``: every device holds the *same* compiled (fused)
      model; micro-batches round-robin across devices (data parallel).
      The host tail runs that model's CPU-fallback ops (dequantize /
      argmax) per batch.
    - ``"shard"``: device ``i`` holds sub-model ``i``'s score network;
      every micro-batch visits *all* devices (model parallel) and the
      host dequantizes, sums and argmaxes the per-shard scores — the
      explicit form of the fused model's aggregation semantics.

    Timing: per-device virtual timelines plus one host timeline.  The
    host tail of batch ``j`` overlaps the device execution of later
    batches; ``makespan`` is when the last host tail finishes.  This is
    the standard double-buffered dispatch loop on real Coral pools,
    expressed in the repo's virtual-clock terms.

    Args:
        pool: A :class:`DevicePool` with models already loaded
            (:meth:`DevicePool.load_replicated` or
            :meth:`DevicePool.load_models`).
        host: Host platform charged for the dequantize/aggregate/argmax
            tail; defaults to :class:`~repro.platforms.cpu.MobileCpu`.
        micro_batch: Samples per device invocation.
        placement: ``"replicate"`` or ``"shard"`` (must match how the
            pool was loaded).
        profiler: Optional :class:`~repro.runtime.profiler.PhaseProfiler`;
            the dispatch makespan is charged under ``inference``.
    """

    def __init__(self, pool: "DevicePool", host: Platform | None = None,
                 micro_batch: int = 32, placement: str = "replicate",
                 profiler=None):
        if micro_batch < 1:
            raise ValueError(f"micro_batch must be >= 1, got {micro_batch}")
        if placement not in _PLACEMENTS:
            raise ValueError(
                f"placement must be one of {_PLACEMENTS}, got {placement!r}"
            )
        if host is None:
            from repro.platforms.cpu import MobileCpu
            host = MobileCpu()
        self.pool = pool
        self.host = host
        self.micro_batch = micro_batch
        self.placement = placement
        self.profiler = profiler
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def dispatch(self, x: np.ndarray, y: np.ndarray | None = None,
                 tracer=None) -> DispatchResult:
        """Run the request stream ``x`` through the pool.

        Args:
            x: Float samples ``(num_samples, num_features)``.
            y: Optional labels for accuracy reporting.
            tracer: Optional :class:`~repro.observability.trace.Tracer`;
                when enabled, the dispatch records explicitly-timed
                ``device.invoke`` / ``host.tail`` spans on the per-device
                virtual timelines under a ``dispatch`` root, then
                advances the tracer cursor past the makespan.  Timing
                and predictions are identical with or without it.

        Returns:
            A :class:`DispatchResult` with predictions in input order
            and the overlap timing accounting.
        """
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D samples, got shape {x.shape}")
        loaded = [(i, model) for i, model in enumerate(self.pool.models)
                  if model is not None]
        if not loaded:
            raise RuntimeError("no models loaded; load the pool first")
        if len(x) == 0:
            # An idle serving queue is not an error: report zero work.
            result = DispatchResult(
                predictions=np.empty(0, dtype=np.int64),
                scores=None,
                samples=0,
                num_batches=0,
                makespan_seconds=0.0,
                device_seconds=[0.0] * len(loaded),
                host_seconds=0.0,
                serial_seconds=0.0,
                device_idle_seconds=[0.0] * len(loaded),
            )
        else:
            with self._lock:
                if self.placement == "replicate":
                    result = self._dispatch_replicated(x, loaded, tracer)
                else:
                    result = self._dispatch_sharded(x, loaded, tracer)
            if tracer is not None:
                tracer.advance(result.makespan_seconds)

        if y is not None:
            y = np.asarray(y, dtype=np.int64)
            if len(y) != result.samples:
                raise ValueError(
                    f"{result.samples} predictions but {len(y)} labels"
                )
            if result.samples:
                result.accuracy = float(np.mean(result.predictions == y))
        if self.profiler is not None:
            self.profiler.charge("inference", result.makespan_seconds)
        return result

    # ------------------------------------------------------------------

    def _batches(self, n: int):
        return [(start, min(start + self.micro_batch, n))
                for start in range(0, n, self.micro_batch)]

    def _dispatch_replicated(self, x, loaded, tracer=None) -> DispatchResult:
        compiled = loaded[0][1]
        for _, other in loaded[1:]:
            if other is not compiled:
                raise ValueError(
                    "replicated dispatch requires the same compiled model "
                    "on every device; use DevicePool.load_replicated()"
                )
        model = compiled.model
        quantized = model.input_spec.qparams.quantize(x)
        predictions = np.empty(len(x), dtype=np.int64)

        batches = self._batches(len(x))
        base = tracer.cursor_s if tracer is not None else 0.0
        root = None
        if tracer is not None:
            root = tracer.add("dispatch", base, base,
                              placement="replicate", samples=len(x),
                              num_batches=len(batches))
        device_free = {i: 0.0 for i, _ in loaded}
        device_busy = {i: 0.0 for i, _ in loaded}
        host_free = 0.0
        host_busy = 0.0
        breakdown: dict = {}
        for j, (start, stop) in enumerate(batches):
            index, _ = loaded[j % len(loaded)]
            device = self.pool.devices[index]
            invoke = device.invoke(quantized[start:stop])
            device_start = device_free[index]
            device_done = device_start + invoke.elapsed_s
            device_free[index] = device_done
            device_busy[index] += invoke.elapsed_s
            for key, value in invoke.breakdown.items():
                breakdown[key] = breakdown.get(key, 0.0) + value

            predictions[start:stop], host_cost = run_host_tail(
                compiled, invoke.outputs, self.host,
            )
            # The host tail waits for this batch's device *and* for the
            # previous batch's tail — that serialization is the overlap
            # model (host works on batch j while devices run j+1...).
            tail_start = max(host_free, device_done)
            host_free = tail_start + host_cost
            host_busy += host_cost
            if tracer is not None:
                tracer.add("device.invoke", base + device_start,
                           base + device_done, parent_id=root,
                           phase="inference", device=index,
                           batch=stop - start, elapsed_s=invoke.elapsed_s,
                           bytes_in=invoke.bytes_in,
                           bytes_out=invoke.bytes_out)
                tracer.add("host.tail", base + tail_start, base + host_free,
                           parent_id=root, phase="inference",
                           batch=stop - start)
        breakdown["host_tail"] = host_busy
        if tracer is not None:
            tracer.finish(root, base + host_free)

        busy = [float(device_busy[i]) for i, _ in loaded]
        return DispatchResult(
            predictions=predictions,
            scores=None,
            samples=len(x),
            num_batches=len(batches),
            makespan_seconds=host_free,
            device_seconds=busy,
            host_seconds=host_busy,
            serial_seconds=sum(device_busy.values()) + host_busy,
            device_idle_seconds=[max(0.0, host_free - b) for b in busy],
            breakdown=breakdown,
        )

    def _dispatch_sharded(self, x, loaded, tracer=None) -> DispatchResult:
        # Pre-quantize once per shard (each has its own input grid).
        quantized = {i: m.model.input_spec.qparams.quantize(x)
                     for i, m in loaded}
        batches = self._batches(len(x))
        base = tracer.cursor_s if tracer is not None else 0.0
        root = None
        if tracer is not None:
            root = tracer.add("dispatch", base, base,
                              placement="shard", samples=len(x),
                              num_batches=len(batches))
        predictions = np.empty(len(x), dtype=np.int64)
        all_scores = None
        device_free = {i: 0.0 for i, _ in loaded}
        device_busy = {i: 0.0 for i, _ in loaded}
        host_free = 0.0
        host_busy = 0.0
        breakdown: dict = {}
        for start, stop in batches:
            rows = stop - start
            batch_scores = None
            batch_device_done = 0.0
            host_cost = 0.0
            for index, compiled in loaded:
                device = self.pool.devices[index]
                invoke = device.invoke(quantized[index][start:stop])
                device_start = device_free[index]
                device_done = device_start + invoke.elapsed_s
                device_free[index] = device_done
                device_busy[index] += invoke.elapsed_s
                batch_device_done = max(batch_device_done, device_done)
                for key, value in invoke.breakdown.items():
                    breakdown[key] = breakdown.get(key, 0.0) + value
                if tracer is not None:
                    tracer.add("device.invoke", base + device_start,
                               base + device_done, parent_id=root,
                               phase="inference", device=index, batch=rows,
                               elapsed_s=invoke.elapsed_s,
                               bytes_in=invoke.bytes_in,
                               bytes_out=invoke.bytes_out)
                out_qparams = compiled.tpu_ops[-1].output_qparams
                scores = out_qparams.dequantize(invoke.outputs)
                host_cost += self.host.elementwise_seconds(scores.size)
                batch_scores = scores if batch_scores is None \
                    else batch_scores + scores
            # (M - 1) summations plus the final argmax.
            host_cost += self.host.elementwise_seconds(
                (len(loaded) - 1) * batch_scores.size
            )
            host_cost += self.host.argmax_seconds(
                rows, batch_scores.shape[1]
            )
            predictions[start:stop] = np.argmax(batch_scores, axis=-1)
            all_scores = batch_scores if all_scores is None \
                else np.vstack([all_scores, batch_scores])
            tail_start = max(host_free, batch_device_done)
            host_free = tail_start + host_cost
            host_busy += host_cost
            if tracer is not None:
                tracer.add("host.tail", base + tail_start, base + host_free,
                           parent_id=root, phase="inference", batch=rows)
        breakdown["host_tail"] = host_busy
        if tracer is not None:
            tracer.finish(root, base + host_free)

        busy = [float(device_busy[i]) for i, _ in loaded]
        return DispatchResult(
            predictions=predictions,
            scores=all_scores,
            samples=len(x),
            num_batches=len(batches),
            makespan_seconds=host_free,
            device_seconds=busy,
            host_seconds=host_busy,
            serial_seconds=sum(device_busy.values()) + host_busy,
            device_idle_seconds=[max(0.0, host_free - b) for b in busy],
            breakdown=breakdown,
        )
