"""The co-design runtime: pipelines and phase-cost models.

Two layers:

- :mod:`repro.runtime.pipeline` — *functional* orchestration of the
  paper's Fig. 1 / Fig. 3 flows on materialized data: encode on the
  simulated Edge TPU, update class hypervectors on the host, fuse and
  deploy the inference model.  Used by the examples and accuracy
  experiments.
- :mod:`repro.runtime.costs` — *analytic* phase models over dataset
  shapes (Table I), producing the modeled runtimes behind the paper's
  Fig. 5/6/10 and Table II.  These never materialize data, so they run
  at full paper scale instantly.
"""

from repro.runtime.costs import (
    CostModel,
    HdcTrainingConfig,
    PhaseBreakdown,
    Workload,
)
from repro.runtime.pipeline import (
    CompileCache,
    InferencePipeline,
    InferenceResult,
    PipelineResult,
    TrainingPipeline,
)
from repro.runtime.continual import ContinualLearner, ContinualResult
from repro.runtime.placement import (
    PlacementAdvisor,
    PlacementDecision,
    tpu_feature_crossover,
)
from repro.runtime.profiler import PhaseProfiler

__all__ = [
    "CompileCache",
    "ContinualLearner",
    "ContinualResult",
    "CostModel",
    "HdcTrainingConfig",
    "InferencePipeline",
    "InferenceResult",
    "PhaseBreakdown",
    "PhaseProfiler",
    "PipelineResult",
    "PlacementAdvisor",
    "PlacementDecision",
    "TrainingPipeline",
    "Workload",
    "tpu_feature_crossover",
]
