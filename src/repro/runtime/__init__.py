"""The co-design runtime: pipelines, executors and phase-cost models.

Three layers:

- :mod:`repro.runtime.pipeline` — *functional* orchestration of the
  paper's Fig. 1 / Fig. 3 flows on materialized data: encode on the
  simulated Edge TPU, update class hypervectors on the host, fuse and
  deploy the inference model.  Used by the examples and accuracy
  experiments.
- :mod:`repro.runtime.executor` — the *parallel* execution layer:
  seed-spawned worker pools that train bagging sub-models concurrently
  (bit-identical to sequential training), and the micro-batched
  multi-device inference dispatcher.
- :mod:`repro.runtime.costs` — *analytic* phase models over dataset
  shapes (Table I), producing the modeled runtimes behind the paper's
  Fig. 5/6/10 and Table II.  These never materialize data, so they run
  at full paper scale instantly.

Exports resolve lazily (PEP 562) so that leaf modules — notably
:mod:`repro.runtime.executor`, which :mod:`repro.hdc.bagging` imports —
can be loaded without dragging in the whole pipeline stack (and without
creating an import cycle through it).
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "CompileCache": "repro.runtime.pipeline",
    "ContinualLearner": "repro.runtime.continual",
    "ContinualResult": "repro.runtime.continual",
    "CostModel": "repro.runtime.costs",
    "DispatchResult": "repro.runtime.executor",
    "ExecutorConfig": "repro.runtime.executor",
    "HdcTrainingConfig": "repro.runtime.costs",
    "InferencePipeline": "repro.runtime.pipeline",
    "InferenceResult": "repro.runtime.pipeline",
    "LatencyTracker": "repro.runtime.profiler",
    "LruCache": "repro.runtime.cache",
    "MicroBatchDispatcher": "repro.runtime.executor",
    "ModelPlan": "repro.runtime.plan",
    "ParallelReport": "repro.runtime.executor",
    "PhaseBreakdown": "repro.runtime.costs",
    "PhaseProfiler": "repro.runtime.profiler",
    "PipelineResult": "repro.runtime.pipeline",
    "PlacementAdvisor": "repro.runtime.placement",
    "PlacementDecision": "repro.runtime.placement",
    "ServingPlan": "repro.runtime.plan",
    "SharedArray": "repro.runtime.executor",
    "TrainingPipeline": "repro.runtime.pipeline",
    "WorkerPool": "repro.runtime.executor",
    "Workload": "repro.runtime.costs",
    "bucket_ladder": "repro.runtime.plan",
    "format_seconds": "repro.runtime.profiler",
    "resolve_shared": "repro.runtime.executor",
    "simulate_makespan": "repro.runtime.executor",
    "spawn_rngs": "repro.runtime.executor",
    "tpu_feature_crossover": "repro.runtime.placement",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
