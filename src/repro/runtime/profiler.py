"""Phase-level runtime profiler for the co-design pipelines."""

from __future__ import annotations

from repro.platforms.base import VirtualClock

__all__ = ["PhaseProfiler"]

# Canonical phase names shared by pipelines, cost models and reports.
PHASES = ("encode", "update", "modelgen", "inference")


class PhaseProfiler:
    """Accumulates modeled seconds under the paper's phase names.

    A thin wrapper over :class:`VirtualClock` adding the canonical phase
    vocabulary (``encode``, ``update``, ``modelgen``, ``inference``) and
    a printable report matching the Fig. 5 breakdown.
    """

    def __init__(self):
        self._clock = VirtualClock()

    def charge(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` under ``phase``."""
        self._clock.charge(phase, seconds)

    def seconds(self, phase: str) -> float:
        """Accumulated seconds for ``phase``."""
        return self._clock.phase(phase)

    @property
    def total(self) -> float:
        """Total accumulated seconds across phases."""
        return self._clock.elapsed()

    def breakdown(self) -> dict:
        """Per-phase seconds (canonical phases first, zeros included).

        Read-only: works on a copy of the clock's phase map, so calling
        it never perturbs accumulated state (the ``pop`` below must not
        reach a live internal dict).
        """
        raw = dict(self._clock.phases())
        ordered = {name: raw.pop(name, 0.0) for name in PHASES}
        ordered.update(raw)
        return ordered

    def report(self, title: str = "runtime breakdown") -> str:
        """Human-readable per-phase table."""
        lines = [f"{title}:"]
        for phase, seconds in self.breakdown().items():
            if seconds == 0.0:
                continue
            share = seconds / self.total if self.total else 0.0
            lines.append(f"  {phase:<10} {seconds:>10.4f} s  ({share:5.1%})")
        lines.append(f"  {'total':<10} {self.total:>10.4f} s")
        return "\n".join(lines)
