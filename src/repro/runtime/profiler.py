"""Phase-level runtime profiler for the co-design pipelines.

Since the observability subsystem landed, :class:`PhaseProfiler` is a
thin *view* over a :class:`~repro.observability.trace.Tracer`: every
``charge`` flows through the tracer's phase clock (and, when tracing is
enabled, records a leaf span), and every total the profiler reports is
read back from that clock.  The float accumulation order is unchanged
from the pre-tracer implementation and identical whether tracing is on
or off, so all phase totals stay bit-identical.

:class:`LatencyTracker` (the percentile primitive) lives in
:mod:`repro.observability.metrics` now; it is re-exported here for its
original import path.
"""

from __future__ import annotations

from repro.observability.metrics import LatencyTracker
from repro.observability.trace import Tracer, format_seconds

__all__ = ["LatencyTracker", "PhaseProfiler", "format_seconds"]

# Canonical phase names shared by pipelines, cost models and reports.
PHASES = ("encode", "update", "modelgen", "inference")


class PhaseProfiler:
    """Accumulates modeled seconds under the paper's phase names.

    A view over a :class:`~repro.observability.trace.Tracer` adding the
    canonical phase vocabulary (``encode``, ``update``, ``modelgen``,
    ``inference``) and a printable report matching the Fig. 5
    breakdown.  The default tracer is disabled — identical behavior and
    overhead to the original clock-only profiler; pass an enabled
    tracer to capture a span per charge alongside the totals.

    Args:
        tracer: The tracer to charge through; a fresh disabled tracer
            when omitted.  Never share one tracer between profilers —
            the phase clock is part of the tracer.
    """

    def __init__(self, tracer: Tracer | None = None):
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)

    def charge(self, phase: str, seconds: float, *, name: str | None = None,
               tags: tuple = (), **attrs) -> None:
        """Add ``seconds`` under ``phase``.

        ``name``, ``tags`` and ``attrs`` label the recorded span when
        tracing is enabled (the span is named after the phase by
        default); they have no effect on the accumulated totals.
        """
        self.tracer.charge(phase, seconds, name=name, tags=tags, **attrs)

    def seconds(self, phase: str) -> float:
        """Accumulated seconds for ``phase``."""
        return self.tracer.phase_seconds(phase)

    @property
    def total(self) -> float:
        """Total accumulated seconds across phases."""
        return self.tracer.total_charged

    def breakdown(self) -> dict:
        """Per-phase seconds (canonical phases first, zeros included).

        Read-only: works on a copy of the tracer's phase map, so
        calling it never perturbs accumulated state (the ``pop`` below
        must not reach a live internal dict).
        """
        raw = self.tracer.phase_totals()
        ordered = {name: raw.pop(name, 0.0) for name in PHASES}
        ordered.update(raw)
        return ordered

    def absorb(self, other: "PhaseProfiler", label: str, **attrs) -> None:
        """Merge a task-local profiler: spans spliced, totals replayed.

        Call in task order (the worker-order-invariance convention):
        the other profiler's spans graft under a wrapper span named
        ``label``, and its per-phase totals charge this profiler's
        clock phase-by-phase — the same two-level float summation the
        pipelines used before the tracer existed, so merged totals are
        bit-identical to that code for any worker count.
        """
        self.tracer.splice(other.tracer, name=label, **attrs)
        for phase, seconds in other.breakdown().items():
            if seconds:
                self.tracer.charge(phase, seconds, record=False)

    def percentile_report(self, tracker: "LatencyTracker",
                          title: str = "latency") -> str:
        """Human-readable percentile line for a recorded distribution.

        Units adapt to magnitude (µs / ms / s), so sub-microsecond
        device spans no longer print as ``0.000 ms``.
        """
        if len(tracker) == 0:
            return f"{title}: no samples"
        return (
            f"{title}: p50={format_seconds(tracker.p50)}  "
            f"p95={format_seconds(tracker.p95)}  "
            f"p99={format_seconds(tracker.p99)}  "
            f"max={format_seconds(tracker.max)}  (n={len(tracker)})"
        )

    def report(self, title: str = "runtime breakdown") -> str:
        """Human-readable per-phase table."""
        lines = [f"{title}:"]
        for phase, seconds in self.breakdown().items():
            if seconds == 0.0:
                continue
            share = seconds / self.total if self.total else 0.0
            lines.append(f"  {phase:<10} {seconds:>10.4f} s  ({share:5.1%})")
        lines.append(f"  {'total':<10} {self.total:>10.4f} s")
        return "\n".join(lines)
