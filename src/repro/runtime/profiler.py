"""Phase-level runtime profiler for the co-design pipelines."""

from __future__ import annotations

import math

from repro.platforms.base import VirtualClock

__all__ = ["LatencyTracker", "PhaseProfiler"]

# Canonical phase names shared by pipelines, cost models and reports.
PHASES = ("encode", "update", "modelgen", "inference")


class PhaseProfiler:
    """Accumulates modeled seconds under the paper's phase names.

    A thin wrapper over :class:`VirtualClock` adding the canonical phase
    vocabulary (``encode``, ``update``, ``modelgen``, ``inference``) and
    a printable report matching the Fig. 5 breakdown.
    """

    def __init__(self):
        self._clock = VirtualClock()

    def charge(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` under ``phase``."""
        self._clock.charge(phase, seconds)

    def seconds(self, phase: str) -> float:
        """Accumulated seconds for ``phase``."""
        return self._clock.phase(phase)

    @property
    def total(self) -> float:
        """Total accumulated seconds across phases."""
        return self._clock.elapsed()

    def breakdown(self) -> dict:
        """Per-phase seconds (canonical phases first, zeros included).

        Read-only: works on a copy of the clock's phase map, so calling
        it never perturbs accumulated state (the ``pop`` below must not
        reach a live internal dict).
        """
        raw = dict(self._clock.phases())
        ordered = {name: raw.pop(name, 0.0) for name in PHASES}
        ordered.update(raw)
        return ordered

    def percentile_report(self, tracker: "LatencyTracker",
                          title: str = "latency") -> str:
        """Human-readable percentile line for a recorded distribution."""
        if len(tracker) == 0:
            return f"{title}: no samples"
        return (
            f"{title}: p50={tracker.p50 * 1e3:.3f} ms  "
            f"p95={tracker.p95 * 1e3:.3f} ms  "
            f"p99={tracker.p99 * 1e3:.3f} ms  "
            f"max={tracker.max * 1e3:.3f} ms  (n={len(tracker)})"
        )

    def report(self, title: str = "runtime breakdown") -> str:
        """Human-readable per-phase table."""
        lines = [f"{title}:"]
        for phase, seconds in self.breakdown().items():
            if seconds == 0.0:
                continue
            share = seconds / self.total if self.total else 0.0
            lines.append(f"  {phase:<10} {seconds:>10.4f} s  ({share:5.1%})")
        lines.append(f"  {'total':<10} {self.total:>10.4f} s")
        return "\n".join(lines)


class LatencyTracker:
    """Records a latency distribution on the virtual clock.

    Percentiles use the nearest-rank definition (the smallest recorded
    value with at least ``p`` percent of the mass at or below it), so a
    reported p99 is always an actually-observed latency and the result
    is exactly reproducible — no interpolation between samples.
    """

    def __init__(self):
        self._values: list[float] = []
        self._sorted: list[float] | None = []

    def record(self, seconds: float) -> None:
        """Add one observation (seconds, must be >= 0)."""
        seconds = float(seconds)
        if not seconds >= 0.0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self._values.append(seconds)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._values)

    def _ordered(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            raise ValueError("no latencies recorded")
        ordered = self._ordered()
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th-percentile latency."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th-percentile latency — the SLA metric."""
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        """Arithmetic mean latency."""
        if not self._values:
            raise ValueError("no latencies recorded")
        return sum(self._values) / len(self._values)

    @property
    def max(self) -> float:
        """Worst observed latency."""
        if not self._values:
            raise ValueError("no latencies recorded")
        return self._ordered()[-1]

    def summary(self) -> dict:
        """Machine-readable percentile summary."""
        if not self._values:
            return {"count": 0}
        return {
            "count": len(self._values),
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p95_s": self.p95,
            "p99_s": self.p99,
            "max_s": self.max,
        }
