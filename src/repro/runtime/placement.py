"""Placement advisor: should a workload use the Edge TPU? (extension)

The paper's Sec. IV-E observation — few-feature datasets gain nothing
from the accelerator — is actionable: given a workload shape, the cost
models can *decide* where each phase should run and at what batch size,
instead of leaving the user to rediscover PAMAP2's lesson.  This module
turns the Fig. 10 crossover into an API.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.costs import CostModel, HdcTrainingConfig, Workload

__all__ = ["PlacementAdvisor", "PlacementDecision", "tpu_feature_crossover"]


@dataclass(frozen=True)
class PlacementDecision:
    """Where each phase of a workload should run.

    Attributes:
        workload: The workload name.
        encode_device: ``"tpu"`` or ``"cpu"`` for training-set encoding.
        inference_device: ``"tpu"`` or ``"cpu"`` for deployment.
        encode_speedup: CPU/TPU encoding-time ratio (> 1 favours TPU).
        inference_speedup: CPU/TPU inference-time ratio.
    """

    workload: str
    encode_device: str
    inference_device: str
    encode_speedup: float
    inference_speedup: float

    def summary(self) -> str:
        """One-line human-readable recommendation."""
        return (
            f"{self.workload}: encode on {self.encode_device.upper()} "
            f"({self.encode_speedup:.2f}x), inference on "
            f"{self.inference_device.upper()} ({self.inference_speedup:.2f}x)"
        )


class PlacementAdvisor:
    """Chooses CPU vs Edge TPU per phase from the calibrated cost models.

    Args:
        cost_model: The :class:`CostModel` to consult; a default-
            calibrated one is built when omitted.
        margin: Required advantage before moving work to the TPU — a
            ratio of 1.0 moves work for any win; the default 1.1 keeps
            marginal workloads on the CPU (attaching an accelerator has
            costs the latency model does not see, e.g. enclosure, power
            budget).
    """

    def __init__(self, cost_model: CostModel | None = None,
                 margin: float = 1.1):
        if margin < 1.0:
            raise ValueError(f"margin must be >= 1.0, got {margin}")
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.margin = margin

    def advise(self, workload: Workload,
               config: HdcTrainingConfig | None = None) -> PlacementDecision:
        """Produce per-phase placement for ``workload``."""
        config = config if config is not None else HdcTrainingConfig()
        cm = self.cost_model
        encode_speedup = (
            cm.cpu_encode_seconds(workload.num_train, workload.num_features,
                                  config.dimension)
            / cm.tpu_encode_seconds(workload.num_train, workload.num_features,
                                    config.dimension)
        )
        inference_speedup = (
            cm.cpu_inference(workload, config)
            / cm.tpu_inference(workload, config)
        )
        return PlacementDecision(
            workload=workload.name,
            encode_device="tpu" if encode_speedup >= self.margin else "cpu",
            inference_device=(
                "tpu" if inference_speedup >= self.margin else "cpu"
            ),
            encode_speedup=encode_speedup,
            inference_speedup=inference_speedup,
        )

    def best_inference_batch(self, workload: Workload,
                             config: HdcTrainingConfig | None = None,
                             latency_budget_s: float | None = None,
                             candidates: tuple = (1, 2, 4, 8, 16, 32, 64)
                             ) -> int:
        """Largest candidate batch whose per-*batch* latency fits budget.

        Batching amortizes the dispatch overhead (throughput goes up)
        but delays results (latency goes up); given a per-decision
        latency budget, pick the largest batch that still meets it.
        ``None`` budget returns the throughput-optimal (largest) batch.
        """
        config = config if config is not None else HdcTrainingConfig()
        if not candidates:
            raise ValueError("candidates must not be empty")
        tpu = self.cost_model.tpu
        layers = [
            (workload.num_features, config.dimension),
            (config.dimension, workload.num_classes),
        ]
        best = None
        for batch in sorted(candidates):
            batch_latency = tpu.invoke_seconds(layers, batch,
                                               tanh_after_first=True)
            if latency_budget_s is None or batch_latency <= latency_budget_s:
                best = batch
        if best is None:
            # Nothing fits: the smallest batch is the least-bad option.
            best = min(candidates)
        return best


def tpu_feature_crossover(dimension: int = 10_000,
                          num_samples: int = 10_000,
                          cost_model: CostModel | None = None,
                          low: int = 1, high: int = 2048) -> int:
    """Smallest feature count at which TPU encoding beats the CPU.

    Binary-searches the Fig. 10 curve (which is monotone in the feature
    count).  The paper's measured crossover is around 20 features; the
    answer tells a user whether their sensor payload is "a PAMAP2" or
    "an MNIST".

    Returns:
        The crossover feature count, or ``high`` if the TPU never wins
        below it.
    """
    cm = cost_model if cost_model is not None else CostModel()
    if low < 1 or high <= low:
        raise ValueError(f"need 1 <= low < high, got ({low}, {high})")
    if cm.encoding_speedup(num_samples, low, dimension) >= 1.0:
        return low
    lo, hi = low, high
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if cm.encoding_speedup(num_samples, mid, dimension) >= 1.0:
            hi = mid
        else:
            lo = mid
    return hi
