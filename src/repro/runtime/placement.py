"""Placement: which hardware should a workload run on? (extension)

The paper's Sec. IV-E observation — few-feature datasets gain nothing
from the accelerator — is actionable: given a workload shape, the cost
models can *decide* where each phase should run and at what batch size,
instead of leaving the user to rediscover PAMAP2's lesson.

Two layers:

- :class:`PlacementAdvisor` / :func:`tpu_feature_crossover` — the
  original binary CPU-vs-TPU advisor built on the calibrated
  :class:`~repro.runtime.costs.CostModel` (the Fig. 10 crossover as an
  API).
- :class:`PlacementOptimizer` — the fleet generalization: given a
  heterogeneous :class:`~repro.config.FleetSpec` (big TPU / small TPU /
  Pi CPU / neuromorphic) and a per-tenant SLA mix, choose each tenant's
  backend, batch bucket and device share minimizing the modeled
  cost-rate (provisioning + energy) subject to the deadline.  The
  result (:class:`FleetPlacement`) feeds
  :class:`~repro.cluster.cluster.Cluster` (one replica per decision,
  routed by the ``"placed"`` policy) and ``repro.api.deploy``.

The optimizer is RNG-free and iterates fleets and tenants in canonical
order, so its picks are invariant to seeds and to the listing order of
fleet groups and tenants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import BackendSpec, FleetSpec
from repro.edgetpu.backend import AcceleratorArch
from repro.edgetpu.compiler import CompiledModel, compile_model
from repro.runtime.costs import CostModel, HdcTrainingConfig, Workload

__all__ = [
    "FleetPlacement",
    "ModelPlacement",
    "PlacementAdvisor",
    "PlacementDecision",
    "PlacementOptimizer",
    "tpu_feature_crossover",
]


@dataclass(frozen=True)
class PlacementDecision:
    """Where each phase of a workload should run.

    Attributes:
        workload: The workload name.
        encode_device: ``"tpu"`` or ``"cpu"`` for training-set encoding.
        inference_device: ``"tpu"`` or ``"cpu"`` for deployment.
        encode_speedup: CPU/TPU encoding-time ratio (> 1 favours TPU).
        inference_speedup: CPU/TPU inference-time ratio.
    """

    workload: str
    encode_device: str
    inference_device: str
    encode_speedup: float
    inference_speedup: float

    def summary(self) -> str:
        """One-line human-readable recommendation."""
        return (
            f"{self.workload}: encode on {self.encode_device.upper()} "
            f"({self.encode_speedup:.2f}x), inference on "
            f"{self.inference_device.upper()} ({self.inference_speedup:.2f}x)"
        )


class PlacementAdvisor:
    """Chooses CPU vs Edge TPU per phase from the calibrated cost models.

    Args:
        cost_model: The :class:`CostModel` to consult; a default-
            calibrated one is built when omitted.
        margin: Required advantage before moving work to the TPU — a
            ratio of 1.0 moves work for any win; the default 1.1 keeps
            marginal workloads on the CPU (attaching an accelerator has
            costs the latency model does not see, e.g. enclosure, power
            budget).
    """

    def __init__(self, cost_model: CostModel | None = None,
                 margin: float = 1.1):
        if margin < 1.0:
            raise ValueError(f"margin must be >= 1.0, got {margin}")
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.margin = margin

    def advise(self, workload: Workload,
               config: HdcTrainingConfig | None = None) -> PlacementDecision:
        """Produce per-phase placement for ``workload``."""
        config = config if config is not None else HdcTrainingConfig()
        cm = self.cost_model
        encode_speedup = (
            cm.cpu_encode_seconds(workload.num_train, workload.num_features,
                                  config.dimension)
            / cm.tpu_encode_seconds(workload.num_train, workload.num_features,
                                    config.dimension)
        )
        inference_speedup = (
            cm.cpu_inference(workload, config)
            / cm.tpu_inference(workload, config)
        )
        return PlacementDecision(
            workload=workload.name,
            encode_device="tpu" if encode_speedup >= self.margin else "cpu",
            inference_device=(
                "tpu" if inference_speedup >= self.margin else "cpu"
            ),
            encode_speedup=encode_speedup,
            inference_speedup=inference_speedup,
        )

    def best_inference_batch(self, workload: Workload,
                             config: HdcTrainingConfig | None = None,
                             latency_budget_s: float | None = None,
                             candidates: tuple = (1, 2, 4, 8, 16, 32, 64)
                             ) -> int:
        """Largest candidate batch whose per-*batch* latency fits budget.

        Batching amortizes the dispatch overhead (throughput goes up)
        but delays results (latency goes up); given a per-decision
        latency budget, pick the largest batch that still meets it.
        ``None`` budget returns the throughput-optimal (largest) batch.
        """
        config = config if config is not None else HdcTrainingConfig()
        if not candidates:
            raise ValueError("candidates must not be empty")
        tpu = self.cost_model.tpu
        layers = [
            (workload.num_features, config.dimension),
            (config.dimension, workload.num_classes),
        ]
        best = None
        for batch in sorted(candidates):
            batch_latency = tpu.invoke_seconds(layers, batch,
                                               tanh_after_first=True)
            if latency_budget_s is None or batch_latency <= latency_budget_s:
                best = batch
        if best is None:
            # Nothing fits: the smallest batch is the least-bad option.
            best = min(candidates)
        return best


def tpu_feature_crossover(dimension: int = 10_000,
                          num_samples: int = 10_000,
                          cost_model: CostModel | None = None,
                          low: int = 1, high: int = 2048) -> int:
    """Smallest feature count at which TPU encoding beats the CPU.

    Binary-searches the Fig. 10 curve (which is monotone in the feature
    count).  The paper's measured crossover is around 20 features; the
    answer tells a user whether their sensor payload is "a PAMAP2" or
    "an MNIST".

    Returns:
        The crossover feature count, or ``high`` if the TPU never wins
        below it.
    """
    cm = cost_model if cost_model is not None else CostModel()
    if low < 1 or high <= low:
        raise ValueError(f"need 1 <= low < high, got ({low}, {high})")
    if cm.encoding_speedup(num_samples, low, dimension) >= 1.0:
        return low
    lo, hi = low, high
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if cm.encoding_speedup(num_samples, mid, dimension) >= 1.0:
            hi = mid
        else:
            lo = mid
    return hi


# ---------------------------------------------------------------------
# Fleet placement
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class ModelPlacement:
    """One tenant's placement on the fleet.

    Attributes:
        tenant: Tenant name.
        group: The chosen :class:`~repro.config.BackendSpec` group name.
        backend: Backend family of the chosen group.
        bucket: Batch bucket the tenant's replica dispatches at.
        devices: Devices of the group assigned to this tenant.
        service_s: Modeled device service time of one ``bucket``-row
            invocation.
        latency_s: Modeled per-request latency bound (batch-fill wait
            at the tenant's rate plus one service time).
        cost_rate: Modeled cost-rate of the assignment
            (``device_cost_weight * devices * unit_cost +
            energy_weight * power_w``).
        power_w: Modeled steady-state power of the assigned devices at
            the tenant's offered load.
        deadline_s: The tenant's SLA the choice was made against.
        feasible: Whether ``latency_s <= deadline_s``; ``False`` means
            no (group, bucket) met the SLA and this is the
            latency-minimizing fallback.
        arch: The resolved device architecture.
        compiled: The per-architecture compiled variant the replica
            loads (excluded from equality — it carries ndarrays).
    """

    tenant: str
    group: str
    backend: str
    bucket: int
    devices: int
    service_s: float
    latency_s: float
    cost_rate: float
    power_w: float
    deadline_s: float
    feasible: bool
    arch: AcceleratorArch = field(compare=False)
    compiled: CompiledModel = field(compare=False, repr=False)

    def describe(self) -> dict:
        """Flat JSON-ready decision record (for ``deploy/2``)."""
        return {
            "tenant": self.tenant,
            "group": self.group,
            "backend": self.backend,
            "bucket": self.bucket,
            "devices": self.devices,
            "service_s": self.service_s,
            "latency_s": self.latency_s,
            "cost_rate": self.cost_rate,
            "power_w": self.power_w,
            "deadline_s": self.deadline_s,
            "feasible": self.feasible,
        }


@dataclass(frozen=True)
class FleetPlacement:
    """The optimizer's full answer: one decision per tenant.

    Attributes:
        fleet: The fleet the placement was computed for.
        decisions: Per-tenant :class:`ModelPlacement`, sorted by tenant
            name (canonical order, independent of input listing order).
    """

    fleet: FleetSpec
    decisions: tuple

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "decisions",
            tuple(sorted(self.decisions, key=lambda d: d.tenant)),
        )

    @property
    def total_cost_rate(self) -> float:
        """Sum of per-decision modeled cost-rates."""
        return sum(d.cost_rate for d in self.decisions)

    @property
    def total_devices(self) -> int:
        """Devices committed across all decisions."""
        return sum(d.devices for d in self.decisions)

    @property
    def feasible(self) -> bool:
        """True when every tenant's SLA is met by the model."""
        return all(d.feasible for d in self.decisions)

    def decision_for(self, tenant: str) -> ModelPlacement:
        """The decision for one tenant name."""
        for decision in self.decisions:
            if decision.tenant == tenant:
                return decision
        raise KeyError(f"no placement decision for tenant {tenant!r}")

    def describe(self) -> list:
        """JSON-ready decision records, in canonical order."""
        return [d.describe() for d in self.decisions]

    def summary(self) -> str:
        """Human-readable placement table."""
        lines = [
            f"fleet placement ({len(self.decisions)} tenants, "
            f"{self.total_devices} devices, "
            f"cost-rate {self.total_cost_rate:.3f}):"
        ]
        for d in self.decisions:
            flag = "" if d.feasible else "  [SLA MISS]"
            lines.append(
                f"  {d.tenant:<12} -> {d.group:<14} x{d.devices} "
                f"bucket={d.bucket:<3} p_lat={d.latency_s * 1e3:7.2f}ms "
                f"(SLA {d.deadline_s * 1e3:.1f}ms) "
                f"cost={d.cost_rate:.3f}{flag}"
            )
        return "\n".join(lines)


class PlacementOptimizer:
    """Chooses per-tenant backend, bucket and device share on a fleet.

    For every tenant and every (group, bucket) pair the optimizer
    models one replica dispatching ``bucket``-row batches:

    - ``service_s`` — the variant's ``invoke_seconds(bucket)`` on the
      group's architecture;
    - ``latency_s`` — ``(bucket - 1) / rate + service_s`` (worst-case
      batch-fill wait plus one service);
    - ``devices`` — enough that the offered load uses at most
      ``utilization_target`` of throughput:
      ``ceil(rate / (bucket / service_s * utilization_target))``;
    - ``power_w`` — idle power on every assigned device plus the
      busy-fraction share of (active - idle);
    - ``cost_rate`` — ``device_cost_weight * devices * unit_cost +
      energy_weight * power_w``.

    The cheapest feasible pair wins (ties break by latency, then group
    name, then bucket — fully deterministic); tenants claim capacity
    greedily in (rate desc, name) order.  When no pair meets the SLA
    within remaining capacity, the latency-minimizing pair is assigned
    and the decision is flagged infeasible.

    Args:
        fleet: The heterogeneous fleet.
        buckets: Candidate batch buckets (power-of-two ladder by
            default, matching the serving plan's bucketing).
    """

    def __init__(self, fleet: FleetSpec,
                 buckets: tuple = (1, 2, 4, 8, 16, 32)):
        if not isinstance(fleet, FleetSpec):
            raise TypeError(
                f"fleet must be a FleetSpec, got {type(fleet).__name__}"
            )
        if not buckets or any(b < 1 for b in buckets):
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.fleet = fleet
        self.buckets = tuple(sorted(set(int(b) for b in buckets)))

    def _options(self, compiled: CompiledModel, rate_hz: float,
                 deadline_s: float, groups, variants) -> list:
        """Every (group, bucket) assignment for one tenant, canonical
        order."""
        fleet = self.fleet
        options = []
        for spec in groups:
            arch = variants.arch(spec)
            variant = variants.variant(compiled, spec)
            for bucket in self.buckets:
                service_s = variant.invoke_seconds(bucket)
                latency_s = (bucket - 1) / rate_hz + service_s
                throughput = bucket / service_s
                devices = max(1, -(-rate_hz //
                                   (throughput * fleet.utilization_target)))
                devices = int(devices)
                busy = min(float(devices), rate_hz * service_s / bucket)
                power_w = (devices * arch.idle_power_w
                           + busy * (arch.active_power_w
                                     - arch.idle_power_w))
                cost_rate = (fleet.device_cost_weight * devices
                             * spec.unit_cost
                             + fleet.energy_weight * power_w)
                options.append({
                    "spec": spec, "arch": arch, "variant": variant,
                    "bucket": bucket, "devices": devices,
                    "service_s": service_s, "latency_s": latency_s,
                    "cost_rate": cost_rate, "power_w": power_w,
                    "feasible": latency_s <= deadline_s,
                })
        return options

    def place(self, compiled, tenants) -> FleetPlacement:
        """Place every tenant on the fleet.

        Args:
            compiled: The canonical :class:`CompiledModel` every tenant
                serves, or a ``{tenant_name: CompiledModel}`` mapping
                for per-tenant models.
            tenants: :class:`~repro.cluster.traffic.TenantSpec`-like
                objects (need ``name``, ``rate_hz``, ``deadline_s``).

        Raises:
            ValueError: On duplicate/empty tenants or when the fleet
                has no remaining device for some tenant.
        """
        tenants = list(tenants)
        if not tenants:
            raise ValueError("at least one tenant is required")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")
        if isinstance(compiled, dict):
            models = dict(compiled)
            missing = [n for n in names if n not in models]
            if missing:
                raise ValueError(
                    f"no model for tenants: {missing}"
                )
        else:
            models = {name: compiled for name in names}

        groups = self.fleet.groups()
        variants = _VariantCache()
        remaining = {spec.name: spec.count for spec in groups}
        decisions = []
        # Heaviest tenants claim capacity first; name breaks rate ties.
        for tenant in sorted(tenants, key=lambda t: (-t.rate_hz, t.name)):
            options = self._options(
                models[tenant.name], tenant.rate_hz, tenant.deadline_s,
                groups, variants,
            )
            fitting = [o for o in options
                       if o["devices"] <= remaining[o["spec"].name]]
            if not fitting:
                raise ValueError(
                    f"fleet capacity exhausted placing tenant "
                    f"{tenant.name!r} (remaining: {remaining})"
                )
            feasible = [o for o in fitting if o["feasible"]]
            pool = feasible if feasible else fitting
            if feasible:
                best = min(pool, key=lambda o: (
                    o["cost_rate"], o["latency_s"], o["spec"].name,
                    o["bucket"],
                ))
            else:
                best = min(pool, key=lambda o: (
                    o["latency_s"], o["cost_rate"], o["spec"].name,
                    o["bucket"],
                ))
            remaining[best["spec"].name] -= best["devices"]
            decisions.append(ModelPlacement(
                tenant=tenant.name,
                group=best["spec"].name,
                backend=best["spec"].backend,
                bucket=best["bucket"],
                devices=best["devices"],
                service_s=best["service_s"],
                latency_s=best["latency_s"],
                cost_rate=best["cost_rate"],
                power_w=best["power_w"],
                deadline_s=tenant.deadline_s,
                feasible=best["feasible"],
                arch=best["arch"],
                compiled=best["variant"],
            ))
        return FleetPlacement(fleet=self.fleet, decisions=tuple(decisions))


class _VariantCache:
    """Per-(model, group) compiled variants for one placement run."""

    def __init__(self) -> None:
        self._archs: dict[BackendSpec, AcceleratorArch] = {}
        self._variants: dict = {}

    def arch(self, spec: BackendSpec) -> AcceleratorArch:
        arch = self._archs.get(spec)
        if arch is None:
            arch = spec.make()
            self._archs[spec] = arch
        return arch

    def variant(self, compiled: CompiledModel,
                spec: BackendSpec) -> CompiledModel:
        arch = self.arch(spec)
        if compiled.arch == arch:
            return compiled
        key = (id(compiled), spec)
        entry = self._variants.get(key)
        if entry is None:
            entry = (compiled, compile_model(compiled.model, arch))
            self._variants[key] = entry
        return entry[1]
