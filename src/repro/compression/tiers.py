"""Serving tiers: one trained model, several compiled operating points.

The serving stack's graceful-degradation story needs more than one
compiled artifact of the *same* trained model: a full-width tier for
accuracy, a DPQ-compressed tier for load spikes, and a tiny distilled
tier for overload.  :func:`build_tiers` produces that ladder — every
tier goes through the identical ``inference_network → convert →
compile_model`` path as a normal deployment, and every tier's accuracy
is measured *at build time* through the compiled int8 op chain (the
bit-exact host mirror of what a device serves), so the server can
report exactly what accuracy it traded for latency.

Tier 0 is always the uncompressed model; degraded tiers must be
strictly narrower, so their invoke cost is strictly cheaper and
shedding to a higher tier index can only reduce service time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.dpq import compress
from repro.compression.ldc import distill
from repro.edgetpu.arch import EdgeTpuArch
from repro.edgetpu.compiler import CompiledModel, compile_model
from repro.hdc.bagging import FusedHDCModel
from repro.nn.builder import inference_network
from repro.tflite.converter import convert

__all__ = [
    "DEFAULT_TIER_SPECS",
    "Tier",
    "TierSet",
    "TierSpec",
    "build_tiers",
    "compiled_predict",
]

_KINDS = ("full", "dpq", "ldc")


@dataclass(frozen=True)
class TierSpec:
    """Recipe for one serving tier.

    Attributes:
        name: Tier name (unique within a ladder; used in metric names).
        kind: ``"full"`` (the uncompressed model), ``"dpq"``
            (post-training prune + sub-int8 quantization) or ``"ldc"``
            (low-dimensional distilled student).
        dimension: Target hypervector width (ignored for ``"full"``).
        bits: Class-weight width for ``"dpq"``.
        iterations: Student training passes for ``"ldc"``.
    """

    name: str
    kind: str = "full"
    dimension: int | None = None
    bits: int = 4
    iterations: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.kind not in _KINDS:
            raise ValueError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.kind != "full" and (self.dimension is None
                                    or self.dimension < 1):
            raise ValueError(
                f"tier {self.name!r} ({self.kind}) needs a positive "
                f"dimension, got {self.dimension}"
            )


#: The paper-scale ladder: full width, DPQ-compressed ~d/5, tiny LDC
#: student.  ``build_tiers`` clamps the widths to the trained model.
DEFAULT_TIER_SPECS = (
    TierSpec("full", "full"),
    TierSpec("compressed", "dpq", dimension=2048),
    TierSpec("tiny", "ldc", dimension=256),
)


@dataclass
class Tier:
    """One built serving tier: the model, its compilation, its accuracy.

    Attributes:
        name: Tier name (from the spec).
        kind: Compression kind (from the spec).
        fused: The tier's float model.
        compiled: The tier's Edge TPU compilation.
        build_accuracy: Accuracy on the build-time evaluation set,
            measured through the compiled int8 ops (``None`` when no
            labeled evaluation set was provided).
    """

    name: str
    kind: str
    fused: FusedHDCModel
    compiled: CompiledModel
    build_accuracy: float | None = None

    @property
    def dimension(self) -> int:
        """Hypervector width of this tier."""
        return self.fused.dimension

    @property
    def weight_bytes(self) -> int:
        """On-accelerator parameter bytes of this tier."""
        return self.compiled.weight_bytes


@dataclass
class TierSet:
    """An ordered ladder of serving tiers, full-accuracy first.

    Indexing and iteration go by tier index (0 = full model); the
    server sheds load by moving to higher indices.
    """

    tiers: list[Tier] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a TierSet needs at least one tier")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        for left, right in zip(self.tiers, self.tiers[1:]):
            if right.dimension >= left.dimension:
                raise ValueError(
                    f"tiers must be strictly narrowing: {right.name!r} "
                    f"(d={right.dimension}) does not degrade "
                    f"{left.name!r} (d={left.dimension})"
                )

    def __len__(self) -> int:
        return len(self.tiers)

    def __iter__(self):
        return iter(self.tiers)

    def __getitem__(self, index: int) -> Tier:
        return self.tiers[index]

    @property
    def names(self) -> list[str]:
        """Tier names in ladder order."""
        return [t.name for t in self.tiers]

    def summary(self) -> dict:
        """Flat, JSON-ready description of the ladder."""
        return {
            "schema": "repro.tiers/1",
            "tiers": [
                {
                    "name": t.name,
                    "kind": t.kind,
                    "dimension": t.dimension,
                    "weight_bytes": t.weight_bytes,
                    "build_accuracy": t.build_accuracy,
                }
                for t in self.tiers
            ],
        }


def compiled_predict(compiled: CompiledModel, x: np.ndarray, *,
                     plan=None) -> np.ndarray:
    """Predict through the compiled int8 op chain on the host.

    This is the same fused-stage path the server's CPU fallback runs —
    bit-identical to what a device returns — so build-time accuracy is
    exactly served accuracy, not a float approximation of it.

    Args:
        compiled: The compiled model to run.
        x: Float feature batch.
        plan: Optional :class:`~repro.runtime.plan.ModelPlan` or
            :class:`~repro.runtime.plan.ServingPlan` — predictions route
            through its arenas (bucket by bucket, still bit-identical)
            instead of allocating per stage.  A ``ServingPlan`` that
            does not serve ``compiled`` falls back to the classic path.
    """
    x = np.asarray(x, dtype=np.float32)
    if plan is not None:
        model_plan = plan.plan_for(compiled) if hasattr(plan, "plan_for") \
            else plan
        if model_plan is not None:
            out = np.empty(len(x), dtype=np.int64)
            step = model_plan.buckets[-1]
            for start in range(0, len(x), step):
                chunk = x[start:start + step]
                out[start:start + len(chunk)] = model_plan.predict(chunk)
            return out
    out = compiled.model.input_spec.qparams.quantize(x)
    for stage in compiled.host_stages():
        out = stage(out)
    if compiled.model.output_is_index:
        return out[:, 0].astype(np.int64)
    return np.argmax(out, axis=-1).astype(np.int64)


def _compile_tier(fused: FusedHDCModel, calibration: np.ndarray,
                  name: str, arch: EdgeTpuArch | None) -> CompiledModel:
    network = inference_network(
        fused.base_matrix, fused.class_matrix,
        include_argmax=True, name=f"hdc-tier-{name}",
    )
    return compile_model(convert(network, calibration, name=network.name),
                         arch)


def build_tiers(fused: FusedHDCModel, calibration: np.ndarray, *,
                specs: tuple[TierSpec, ...] | list[TierSpec] | None = None,
                evaluation: tuple[np.ndarray, np.ndarray] | None = None,
                compiled_full: CompiledModel | None = None,
                arch: EdgeTpuArch | None = None,
                seed: int | None = 0) -> TierSet:
    """Build the compiled serving ladder for one trained model.

    Args:
        fused: The trained full-width model (tier 0's weights).
        calibration: Representative float batch for int8 conversion
            (also the distillation set for ``"ldc"`` tiers).
        specs: Ladder recipe; defaults to :data:`DEFAULT_TIER_SPECS`.
            The first spec must be kind ``"full"``.  Degraded widths
            wider than the trained model are clamped to half its width
            (so the default ladder works for small models too).
        evaluation: Optional labeled ``(x, y)`` set; when given, every
            tier's :attr:`Tier.build_accuracy` is measured on it
            through the compiled int8 ops.
        compiled_full: Reuse an existing tier-0 compilation (e.g.
            :attr:`PipelineResult.compiled
            <repro.runtime.pipeline.PipelineResult>`) instead of
            recompiling — the served artifact stays the deployed one.
        arch: Edge TPU architecture for tiers compiled here.
        seed: Seed for ``"ldc"`` student training.

    Returns:
        The :class:`TierSet`, ready for
        ``InferenceServer(..., tiers=...)``.
    """
    if specs is None:
        specs = DEFAULT_TIER_SPECS
    specs = list(specs)
    if not specs or specs[0].kind != "full":
        raise ValueError("the first tier spec must be kind='full'")
    if compiled_full is not None and arch is None:
        arch = compiled_full.arch
    calibration = np.asarray(calibration, dtype=np.float32)

    tiers: list[Tier] = []
    seen_dims = {fused.dimension}
    for index, spec in enumerate(specs):
        if spec.kind == "full":
            if index != 0:
                raise ValueError(
                    "only tier 0 may be kind='full' "
                    f"(got {spec.name!r} at index {index})"
                )
            model = fused
            compiled = (compiled_full if compiled_full is not None
                        else _compile_tier(fused, calibration, spec.name,
                                           arch))
        else:
            # Clamp a too-wide degraded spec so the default ladder
            # applies to models narrower than the paper's d=10k.
            target = min(spec.dimension, max(1, fused.dimension // 2))
            while target in seen_dims:
                target -= 1
            if target < 1:
                raise ValueError(
                    f"tier {spec.name!r} cannot find a width below "
                    f"the preceding tiers"
                )
            seen_dims.add(target)
            if spec.kind == "dpq":
                model = compress(fused, target, bits=spec.bits).model
            else:
                model = distill(fused, calibration, dimension=target,
                                iterations=spec.iterations, seed=seed)
            compiled = _compile_tier(model, calibration, spec.name, arch)
        accuracy = None
        if evaluation is not None:
            eval_x, eval_y = evaluation
            predictions = compiled_predict(compiled, eval_x)
            accuracy = float(np.mean(
                predictions == np.asarray(eval_y, dtype=np.int64)
            ))
        tiers.append(Tier(name=spec.name, kind=spec.kind, fused=model,
                          compiled=compiled, build_accuracy=accuracy))
    return TierSet(tiers)
