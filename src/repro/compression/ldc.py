"""LDC-style distillation: a low-dimensional student of a trained model.

Where :mod:`repro.compression.dpq` shrinks the trained model *in
place* (no retraining), the LDC line of work (see PAPERS.md) trains a
very low-dimensional classifier from scratch.  This module gets the
best of both for the serving stack's cheapest tier: a tiny
:class:`~repro.hdc.model.HDCClassifier` is *distilled* against the
trained teacher's predictions, so it needs no labels — only the
unlabeled calibration set the compile path already requires — and it
inherits the teacher's decision surface rather than re-learning from
raw data.

The student is returned as a plain
:class:`~repro.hdc.bagging.FusedHDCModel`, so it compiles through the
same ``inference_network → convert → compile_model`` path as every
other tier.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.bagging import FusedHDCModel
from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.model import HDCClassifier

__all__ = ["distill"]


def distill(fused: FusedHDCModel, x: np.ndarray, *, dimension: int = 256,
            iterations: int = 4, learning_rate: float = 0.035,
            seed: int | None = 0) -> FusedHDCModel:
    """Train a low-dimensional student against the teacher's labels.

    Args:
        fused: The trained teacher (never modified).
        x: Unlabeled distillation samples
            ``(num_samples, num_features)`` — the teacher's hard
            predictions on these become the student's targets.
        dimension: Student hypervector width (LDC territory: hundreds,
            not thousands).
        iterations: Student training passes.
        learning_rate: Student update scale.
        seed: Seed for the student's base hypervectors and shuffles.

    Returns:
        The student as a :class:`FusedHDCModel` of width ``dimension``.
    """
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise ValueError(f"expected 2-D samples, got shape {x.shape}")
    if x.shape[1] != fused.num_features:
        raise ValueError(
            f"teacher expects {fused.num_features} features, "
            f"got {x.shape[1]}"
        )
    if not 1 <= dimension <= fused.dimension:
        raise ValueError(
            f"dimension must be in [1, {fused.dimension}], "
            f"got {dimension}"
        )
    targets = fused.predict(x).astype(np.int64)
    rng = np.random.default_rng(seed)
    encoder = NonlinearEncoder(x.shape[1], dimension, seed=rng)
    student = HDCClassifier(
        dimension=dimension, encoder=encoder,
        learning_rate=learning_rate, seed=rng,
    )
    student.fit(x, targets, iterations=iterations,
                num_classes=fused.num_classes)
    return FusedHDCModel(
        base_matrix=encoder.base_hypervectors.astype(np.float32,
                                                     copy=False),
        class_matrix=student.class_hypervectors.T.astype(np.float32,
                                                         copy=False),
        num_classes=fused.num_classes,
        sub_widths=[dimension],
    )
