"""DPQ-HD-style post-training compression of a fused HDC model.

The DPQ-HD pipeline (decomposition + pruning + quantization, see
PAPERS.md) compresses a trained hyperdimensional classifier *without
retraining*: hypervector dimensions whose class weights carry little
magnitude are pruned away, and the surviving class weights are
re-quantized below int8.  Both transforms act purely on the trained
``(base, class)`` matrix pair, so the result is just a narrower
:class:`~repro.hdc.bagging.FusedHDCModel` that flows through the
existing ``inference_network → convert → compile_model`` path.

Everything here is exact and deterministic: pruning keeps precisely
the top-``keep`` saliency dimensions (ties broken toward the lower
index), and quantization is symmetric round-to-nearest with a
per-class scale, so the dequantization error is bounded by half a
quantization step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hdc.bagging import FusedHDCModel

__all__ = [
    "CompressedModel",
    "compress",
    "dimension_saliency",
    "prune_dimensions",
    "quantize_class_matrix",
]


def dimension_saliency(class_matrix: np.ndarray) -> np.ndarray:
    """Per-dimension saliency: L2 norm of the class weights.

    A hypervector dimension only influences a prediction through its
    row of the class matrix; a row near zero contributes (almost)
    nothing to any class score, so its dimension can be dropped from
    both matrices without retraining.

    Args:
        class_matrix: ``(dimension, num_classes)`` trained weights.

    Returns:
        ``(dimension,)`` non-negative saliency scores.
    """
    class_matrix = np.asarray(class_matrix)
    if class_matrix.ndim != 2:
        raise ValueError(
            f"class_matrix must be 2-D, got shape {class_matrix.shape}"
        )
    return np.sqrt(np.sum(
        np.square(class_matrix.astype(np.float64)), axis=1,
    ))


def _top_k(saliency: np.ndarray, keep: int) -> np.ndarray:
    """Indices of the ``keep`` largest saliencies, ascending.

    Exact top-k with a deterministic tie-break: among equal
    saliencies the *lower* index wins (lexsort on (-saliency, index)),
    so two runs can never disagree about which dimensions survive.
    """
    order = np.lexsort((np.arange(len(saliency)), -saliency))
    return np.sort(order[:keep])


def _apportion(keep: int, widths: list[int]) -> list[int]:
    """Split a global budget across blocks, proportionally to width.

    Largest-remainder apportionment: every block gets
    ``floor(keep * width / total)`` and the leftover slots go to the
    largest fractional remainders (ties toward the lower block index).
    The result sums to exactly ``keep`` and never exceeds any block's
    width.
    """
    total = sum(widths)
    quotas = [keep * w / total for w in widths]
    counts = [min(w, int(q)) for q, w in zip(quotas, widths)]
    remainders = sorted(
        range(len(widths)),
        key=lambda i: (-(quotas[i] - int(quotas[i])), i),
    )
    short = keep - sum(counts)
    cursor = 0
    while short > 0:
        i = remainders[cursor % len(widths)]
        if counts[i] < widths[i]:
            counts[i] += 1
            short -= 1
        cursor += 1
    return counts


def prune_dimensions(fused: FusedHDCModel, keep: int,
                     decompose: bool = True
                     ) -> tuple[FusedHDCModel, np.ndarray]:
    """Keep the ``keep`` highest-saliency hypervector dimensions.

    Args:
        fused: The trained full-width model.
        keep: Dimensions to survive (``1 <= keep <= fused.dimension``).
        decompose: Apportion the budget across the fused model's
            sub-model blocks (``sub_widths``) before ranking — the
            DPQ-HD decomposition step, which preserves every
            sub-model's voice in the ensemble.  ``False`` (or a model
            without block bookkeeping) ranks globally.

    Returns:
        ``(pruned_model, kept_indices)`` where ``kept_indices`` is the
        ascending index array into the original dimension axis.
    """
    if not 1 <= keep <= fused.dimension:
        raise ValueError(
            f"keep must be in [1, {fused.dimension}], got {keep}"
        )
    saliency = dimension_saliency(fused.class_matrix)
    blocks = fused.sub_widths if decompose else []
    if blocks and sum(blocks) == fused.dimension and len(blocks) > 1:
        counts = _apportion(keep, list(blocks))
        kept_parts = []
        offset = 0
        for width, count in zip(blocks, counts):
            if count:
                local = _top_k(saliency[offset:offset + width], count)
                kept_parts.append(local + offset)
            offset += width
        kept = np.concatenate(kept_parts)
        new_widths = [c for c in counts if c]
    else:
        kept = _top_k(saliency, keep)
        new_widths = [keep]
    pruned = FusedHDCModel(
        base_matrix=np.ascontiguousarray(fused.base_matrix[:, kept]),
        class_matrix=np.ascontiguousarray(fused.class_matrix[kept, :]),
        num_classes=fused.num_classes,
        sub_widths=new_widths,
    )
    return pruned, kept


def quantize_class_matrix(class_matrix: np.ndarray, bits: int
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-class quantization of the class weights.

    Each class column is mapped onto the signed integer grid
    ``[-(2**(bits-1) - 1), 2**(bits-1) - 1]`` with its own scale
    (``max |w| / levels``), round-to-nearest.  An all-zero column gets
    scale 0 and quantizes to zeros.

    Args:
        class_matrix: ``(dimension, num_classes)`` float weights.
        bits: Integer width, ``2..8`` (DPQ-HD's sub-int8 step).

    Returns:
        ``(codes, scales)``: int8-held codes of the same shape and the
        ``(num_classes,)`` per-class scales, with the guarantee
        ``|codes * scales - class_matrix| <= scales / 2`` elementwise.
    """
    if not 2 <= bits <= 8:
        raise ValueError(f"bits must be in [2, 8], got {bits}")
    class_matrix = np.asarray(class_matrix, dtype=np.float64)
    if class_matrix.ndim != 2:
        raise ValueError(
            f"class_matrix must be 2-D, got shape {class_matrix.shape}"
        )
    levels = 2 ** (bits - 1) - 1
    peaks = np.max(np.abs(class_matrix), axis=0)
    scales = peaks / levels
    safe = np.where(scales > 0, scales, 1.0)
    codes = np.rint(class_matrix / safe)
    codes = np.clip(codes, -levels, levels).astype(np.int8)
    return codes, scales


def dequantize_class_matrix(codes: np.ndarray, scales: np.ndarray
                            ) -> np.ndarray:
    """Reconstruct float class weights from codes and per-class scales."""
    return (np.asarray(codes, dtype=np.float64)
            * np.asarray(scales)[None, :]).astype(np.float32)


@dataclass
class CompressedModel:
    """A pruned + re-quantized model, plus its compression record.

    Attributes:
        model: The compressed :class:`FusedHDCModel` (dequantized class
            weights, ready for the normal compile path).
        kept_indices: Ascending original-dimension indices that
            survived pruning.
        bits: Class-weight integer width after re-quantization.
        codes: The sub-int8 class-weight codes actually stored
            (``(keep, num_classes)`` int8).
        scales: Per-class dequantization scales.
        original_dimension: Width before pruning.
    """

    model: FusedHDCModel
    kept_indices: np.ndarray
    bits: int
    codes: np.ndarray
    scales: np.ndarray
    original_dimension: int
    sub_widths: list[int] = field(default_factory=list)

    @property
    def dimension(self) -> int:
        """Surviving hypervector width."""
        return self.model.dimension

    @property
    def compression_ratio(self) -> float:
        """Class-weight size reduction vs. the float32 original."""
        original = self.original_dimension * 32
        compressed = self.dimension * self.bits
        return original / compressed if compressed else float("inf")


def compress(fused: FusedHDCModel, target_dim: int, *, bits: int = 4,
             decompose: bool = True) -> CompressedModel:
    """One-shot DPQ-HD compression: decompose → prune → quantize.

    Args:
        fused: The trained full-width model (never modified).
        target_dim: Hypervector width to keep.
        bits: Sub-int8 width for the surviving class weights.
        decompose: Apportion pruning across sub-model blocks.

    Returns:
        The :class:`CompressedModel`; ``result.model`` drops into the
        existing compile/serve path like any fused model.
    """
    pruned, kept = prune_dimensions(fused, target_dim,
                                    decompose=decompose)
    codes, scales = quantize_class_matrix(pruned.class_matrix, bits)
    model = FusedHDCModel(
        base_matrix=pruned.base_matrix,
        class_matrix=dequantize_class_matrix(codes, scales),
        num_classes=pruned.num_classes,
        sub_widths=list(pruned.sub_widths),
    )
    return CompressedModel(
        model=model,
        kept_indices=kept,
        bits=bits,
        codes=codes,
        scales=scales,
        original_dimension=fused.dimension,
        sub_widths=list(pruned.sub_widths),
    )
