"""Post-training model compression and the serving tier ladder.

- :mod:`repro.compression.dpq` — DPQ-HD-style decomposition, magnitude
  pruning and sub-int8 class-weight quantization (no retraining).
- :mod:`repro.compression.ldc` — LDC-style low-dimensional student
  distilled from the trained teacher.
- :mod:`repro.compression.tiers` — compiles one trained model into an
  ordered ladder of serving tiers with build-time accuracy.
"""

from repro.compression.dpq import (
    CompressedModel,
    compress,
    dimension_saliency,
    prune_dimensions,
    quantize_class_matrix,
)
from repro.compression.ldc import distill
from repro.compression.tiers import (
    DEFAULT_TIER_SPECS,
    Tier,
    TierSet,
    TierSpec,
    build_tiers,
    compiled_predict,
)

__all__ = [
    "CompressedModel",
    "DEFAULT_TIER_SPECS",
    "Tier",
    "TierSet",
    "TierSpec",
    "build_tiers",
    "compiled_predict",
    "compress",
    "dimension_saliency",
    "distill",
    "prune_dimensions",
    "quantize_class_matrix",
]
