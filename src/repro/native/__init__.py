"""Optional native AVX-512 VNNI kernels for the int8 serving fast path.

The BLAS fast path in :mod:`repro.tflite.ops` is bit-exact but pays for
generality: the int8 GEMM runs through float64 (or float32) matrix
multiplies, and the requantize + LUT epilogue is a separate numpy pass.
On CPUs with the AVX-512 VNNI extension the whole fused stage — int8
GEMM, requantization, activation lookup — runs in one C kernel at the
int8 throughput the paper's co-design argument assumes, still
bit-identical to the reference interpreter (``vpdpbusd`` accumulates
exactly in int32; the epilogue reproduces the float64 rounding of the
numpy path instruction for instruction).

This module is *strictly optional* and fails closed:

- it activates only on Linux/x86-64 machines whose ``/proc/cpuinfo``
  advertises ``avx512f``, ``avx512bw`` and ``avx512_vnni`` (the flag
  check runs *before* any native code loads — an illegal instruction
  cannot be caught after the fact);
- the kernel source ships with the package (``kernels.c``) and is
  compiled on first use with the system C compiler into a content-
  addressed cache (``~/.cache/repro-native`` or
  ``$REPRO_NATIVE_CACHE``); no compiler, no native path;
- the compiled library must pass a bit-exactness smoke test against a
  numpy oracle before it is ever used;
- ``REPRO_NATIVE=0`` disables the whole module.

Callers (:mod:`repro.runtime.plan`) must additionally prove, per op,
that the int32 accumulator cannot overflow — see
:func:`vnni_accumulator_bound` — and fall back to the BLAS path
otherwise.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "IDENTITY_LUT",
    "PackedFc",
    "available",
    "fc_fused_i8",
    "library",
    "pack_fc",
    "vnni_accumulator_bound",
]

_INT32_MAX = 2**31 - 1
_REQUIRED_FLAGS = {"avx512f", "avx512bw", "avx512_vnni"}

#: LUT mapping ``code + 128 -> code``: running :func:`fc_fused_i8` with
#: it yields the bare requantized int8 codes (a fully-connected op with
#: no fused activation).
IDENTITY_LUT = np.arange(-128, 128, dtype=np.int8)
IDENTITY_LUT.setflags(write=False)

# Tri-state module cache: None = undecided, else (lib | False).
_LIB: ctypes.CDLL | bool | None = None


def _cpu_supported() -> bool:
    """Check the ISA flags *before* loading any native code.

    A ``vpdpbusd`` on a CPU without VNNI raises SIGILL, which Python
    cannot catch — so the gate is the advertised flag set, not
    try-and-see.
    """
    if platform.system() != "Linux" or platform.machine() != "x86_64":
        return False
    try:
        text = Path("/proc/cpuinfo").read_text()
    except OSError:
        return False
    for line in text.splitlines():
        if line.startswith("flags"):
            flags = set(line.split(":", 1)[1].split())
            return _REQUIRED_FLAGS <= flags
    return False


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-native"


def _compile(source: Path) -> Path | None:
    """Compile ``kernels.c`` into a content-addressed shared library."""
    compiler = shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return None
    data = source.read_bytes()
    digest = hashlib.sha256(data).hexdigest()[:16]
    cache = _cache_dir()
    target = cache / f"kernels-{digest}.so"
    if target.exists():
        return target
    try:
        cache.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
        result = subprocess.run(
            [compiler, "-O3", "-fno-math-errno", "-mavx512f", "-mavx512bw",
             "-mavx512vnni", "-shared", "-fPIC", str(source), "-o", tmp],
            capture_output=True, timeout=120,
        )
        if result.returncode != 0:
            os.unlink(tmp)
            return None
        os.replace(tmp, target)  # atomic: concurrent builders converge
        return target
    except (OSError, subprocess.SubprocessError):
        return None


def _bind(lib: ctypes.CDLL) -> None:
    lib.fc_fused_i8.restype = None
    lib.fc_fused_i8.argtypes = [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_double, ctypes.c_double, ctypes.c_double, ctypes.c_double,
        ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
    ]
    lib.fc_acc_i32.restype = None
    lib.fc_acc_i32.argtypes = [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
    ]


def _smoke_test(lib: ctypes.CDLL) -> bool:
    """Bit-exactness check against a pure-numpy oracle on a tiny op."""
    rng = np.random.default_rng(0)
    m, k, n = 5, 23, 48
    x = rng.integers(-128, 128, size=(m, k), dtype=np.int8)
    w = rng.integers(-128, 128, size=(k, n), dtype=np.int8)
    offset = rng.integers(-500, 500, size=n, dtype=np.int64)
    mult, zp, qmin, qmax = 0.0125, 3, -128, 127
    lut = IDENTITY_LUT
    packed = pack_fc(w, offset)
    a = _shift_u8(x, packed.k4)
    out = np.empty((m, packed.n_pad), dtype=np.int8)
    lib.fc_fused_i8(
        a.ctypes.data, packed.weights.ctypes.data, packed.offsets.ctypes.data,
        mult, float(zp), float(qmin), float(qmax),
        lut.ctypes.data, out.ctypes.data, m, packed.k4, packed.n_pad,
    )
    acc = x.astype(np.int64) @ w.astype(np.int64) + offset
    codes = np.clip(np.round(acc.astype(np.float64) * mult) + zp, qmin, qmax)
    expected = lut[codes.astype(np.intp) + 128]
    return bool(np.array_equal(out[:, :n], expected))


def library() -> ctypes.CDLL | None:
    """The loaded kernel library, or ``None`` when unavailable.

    The first call decides (flag gate, compile, smoke test) and the
    decision is cached for the process lifetime.
    """
    global _LIB
    if _LIB is None:
        _LIB = _load()
    return _LIB if _LIB is not False else None


def _load() -> ctypes.CDLL | bool:
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return False
    if not _cpu_supported():
        return False
    source = Path(__file__).with_name("kernels.c")
    if not source.exists():
        return False
    target = _compile(source)
    if target is None:
        return False
    try:
        lib = ctypes.CDLL(str(target))
        _bind(lib)
    except OSError:
        return False
    try:
        if not _smoke_test(lib):
            return False
    except Exception:
        return False
    return lib


def available() -> bool:
    """Whether the native kernels are usable on this machine."""
    return library() is not None


class PackedFc:
    """One fully-connected op's weights in the VNNI kernel layout.

    Attributes:
        weights: Packed int8 weights — per 16-column block, contiguous
            ``[k4][16 columns][4 k]`` quads (``vpdpbusd`` operand
            order); zero-padded to ``k4 * 4`` input rows and ``n_pad``
            output columns.
        offsets: Folded int32 per-column accumulator init:
            ``offset - 128 * column_sum`` (the +128 activation shift
            pre-subtracted).
        k4: Input depth in packed quads (``ceil(k / 4)``).
        n_pad: Padded output width (multiple of 16).
        n: True output width.
    """

    __slots__ = ("weights", "offsets", "k4", "n_pad", "n")

    def __init__(self, weights: np.ndarray, offsets: np.ndarray,
                 k4: int, n_pad: int, n: int):
        self.weights = weights
        self.offsets = offsets
        self.k4 = k4
        self.n_pad = n_pad
        self.n = n


def vnni_accumulator_bound(weights_int8: np.ndarray,
                           offset_int64: np.ndarray) -> int:
    """Worst-case |int32 partial sum| inside the VNNI kernel.

    The kernel initializes each accumulator to
    ``offset - 128 * column_sum`` and adds ``(x + 128) * W`` terms with
    ``x + 128`` in ``[0, 255]``, so every intermediate is bounded by
    ``|offset| + 383 * sum_k |W_kj|``.  The caller must verify the
    returned bound is ``<= 2^31 - 1`` before using the kernel.
    """
    col_abs = np.abs(weights_int8.astype(np.int64)).sum(axis=0)
    bound = np.abs(np.asarray(offset_int64, dtype=np.int64)) + 383 * col_abs
    return int(bound.max(initial=0))


def pack_fc(weights_int8: np.ndarray, offset_int64: np.ndarray) -> PackedFc:
    """Pack an op's weights + folded offset into the kernel layout."""
    w = np.ascontiguousarray(weights_int8, dtype=np.int8)
    k, n = w.shape
    k4 = -(-k // 4)
    n_pad = -(-n // 16) * 16
    wpad = np.zeros((k4 * 4, n_pad), dtype=np.int8)
    wpad[:k, :n] = w
    # [nb][k4][16 cols][4 k] contiguous — the order fc_fused_i8 streams.
    packed = np.ascontiguousarray(
        wpad.reshape(k4, 4, n_pad // 16, 16).transpose(2, 0, 3, 1)
    )
    col_sum = w.astype(np.int64).sum(axis=0)
    offs = np.zeros(n_pad, dtype=np.int64)
    offs[:n] = np.asarray(offset_int64, dtype=np.int64) - 128 * col_sum
    if np.abs(offs).max(initial=0) > _INT32_MAX:
        raise OverflowError("folded offset exceeds int32")
    return PackedFc(packed, offs.astype(np.int32), k4, n_pad, n)


def _shift_u8(x_int8: np.ndarray, k4: int,
              out: np.ndarray | None = None) -> np.ndarray:
    """``x + 128`` as uint8, zero-padded to ``k4 * 4`` columns."""
    m, k = x_int8.shape
    if out is None:
        out = np.zeros((m, k4 * 4), dtype=np.uint8)
    # uint8 wraparound: (x mod 256) + 128 mod 256 == x + 128 for int8 x.
    np.add(x_int8.view(np.uint8), 128, out=out[:, :k])
    return out


def fc_fused_i8(a_u8: np.ndarray, packed: PackedFc, mult: float, zp: int,
                qmin: int, qmax: int, lut: np.ndarray,
                out: np.ndarray) -> np.ndarray:
    """Run the fused FC kernel on pre-shifted activations.

    Args:
        a_u8: ``(m, k4 * 4)`` uint8 shifted activations
            (:func:`_shift_u8`).
        packed: The op's :class:`PackedFc`.
        mult: Per-tensor requantization multiplier.
        zp: Output zero point.
        qmin: Output clamp low.
        qmax: Output clamp high.
        lut: 256-entry int8 table indexed by ``code + 128`` (a tanh
            table, or :data:`IDENTITY_LUT` for a bare FC).
        out: ``(m, packed.n_pad)`` int8 destination (written in place).
    """
    lib = library()
    if lib is None:
        raise RuntimeError("native kernels unavailable")
    m = a_u8.shape[0]
    lib.fc_fused_i8(
        a_u8.ctypes.data, packed.weights.ctypes.data,
        packed.offsets.ctypes.data,
        float(mult), float(zp), float(qmin), float(qmax),
        lut.ctypes.data, out.ctypes.data,
        m, packed.k4, packed.n_pad,
    )
    return out
