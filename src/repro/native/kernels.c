/* AVX-512 VNNI kernels for the int8 serving-plan fast path.
 *
 * Both kernels compute the exact TFLite integer semantics of
 * FullyConnectedOp (see repro/tflite/ops.py):
 *
 *   acc_j = sum_k x_k * W_kj + offset_j          (int32, never saturating)
 *   code  = clip(rint(acc * mult) + zp, qmin, qmax)
 *   out   = lut[code + 128]                      (fc_fused_i8 only)
 *
 * The int8 x int8 product is reached through the unsigned-signed
 * vpdpbusd instruction by shifting activations into uint8 space:
 * a = x + 128, and folding the constant back into the accumulator
 * init, offs'_j = offset_j - 128 * sum_k W_kj.  vpdpbusd is the
 * NON-saturating variant: each of its four u8*s8 products fits int16
 * (255*127 = 32385, -255*128 = -32640) and their sum fits int32, so
 * as long as the caller proves |offs'| + 383 * sum_k |W_kj| < 2^31
 * (see repro/native/__init__.py) every intermediate is exact.
 *
 * The requantization epilogue mirrors the numpy fast path bit for bit:
 * int32 -> float64, multiply, roundscale 0x08 (rint, ties to even ==
 * np.round), add zero point, clamp, convert.  The conversion back to
 * int32 is exact because the value is already integral in [-128, 127].
 *
 * Data layout contract (prepared by repro/native/__init__.py):
 *   A    (M, K4*4) uint8  — activations + 128, K zero-padded to K4*4
 *   Wp   packed weights: per 16-column block nb, [k4][16 cols][4 k] int8
 *        (N padded to a multiple of 16 with zero columns)
 *   offs (N,) int32       — folded per-column accumulator init
 *   lut  (256,) int8      — indexed by code + 128 (tanh table or identity)
 */
#include <immintrin.h>
#include <stdint.h>

/* Fused FC -> requantize -> LUT.  MR=6 x NR=64 (4 zmm) microkernel with
 * a fully unrolled inner loop; edge tiles fall back to the generic loop. */
void fc_fused_i8(const uint8_t* A, const int8_t* Wp, const int32_t* offs,
                 double mult, double zp, double qmin, double qmax,
                 const int8_t* lut, int8_t* out,
                 int64_t M, int64_t K4, int64_t N) {
    int64_t nb_count = N / 16;
    for (int64_t m0 = 0; m0 < M; m0 += 6) {
        int64_t mr = (M - m0) < 6 ? (M - m0) : 6;
        for (int64_t nb = 0; nb < nb_count; nb += 4) {
            int64_t nbr = (nb_count - nb) < 4 ? (nb_count - nb) : 4;
            __m512i acc[6][4];
            for (int64_t i = 0; i < mr; i++)
                for (int64_t j = 0; j < nbr; j++)
                    acc[i][j] = _mm512_loadu_si512(offs + (nb + j) * 16);
            const int8_t* wbase = Wp + (size_t)nb * K4 * 64;
            if (mr == 6 && nbr == 4) {
                const int32_t* a0 = (const int32_t*)(A + (size_t)(m0 + 0) * K4 * 4);
                const int32_t* a1 = (const int32_t*)(A + (size_t)(m0 + 1) * K4 * 4);
                const int32_t* a2 = (const int32_t*)(A + (size_t)(m0 + 2) * K4 * 4);
                const int32_t* a3 = (const int32_t*)(A + (size_t)(m0 + 3) * K4 * 4);
                const int32_t* a4 = (const int32_t*)(A + (size_t)(m0 + 4) * K4 * 4);
                const int32_t* a5 = (const int32_t*)(A + (size_t)(m0 + 5) * K4 * 4);
                for (int64_t k = 0; k < K4; k++) {
                    __m512i b0 = _mm512_loadu_si512(wbase + (size_t)k * 64);
                    __m512i b1 = _mm512_loadu_si512(wbase + (size_t)(K4 + k) * 64);
                    __m512i b2 = _mm512_loadu_si512(wbase + (size_t)(2 * K4 + k) * 64);
                    __m512i b3 = _mm512_loadu_si512(wbase + (size_t)(3 * K4 + k) * 64);
                    __m512i a;
                    a = _mm512_set1_epi32(a0[k]);
                    acc[0][0] = _mm512_dpbusd_epi32(acc[0][0], a, b0);
                    acc[0][1] = _mm512_dpbusd_epi32(acc[0][1], a, b1);
                    acc[0][2] = _mm512_dpbusd_epi32(acc[0][2], a, b2);
                    acc[0][3] = _mm512_dpbusd_epi32(acc[0][3], a, b3);
                    a = _mm512_set1_epi32(a1[k]);
                    acc[1][0] = _mm512_dpbusd_epi32(acc[1][0], a, b0);
                    acc[1][1] = _mm512_dpbusd_epi32(acc[1][1], a, b1);
                    acc[1][2] = _mm512_dpbusd_epi32(acc[1][2], a, b2);
                    acc[1][3] = _mm512_dpbusd_epi32(acc[1][3], a, b3);
                    a = _mm512_set1_epi32(a2[k]);
                    acc[2][0] = _mm512_dpbusd_epi32(acc[2][0], a, b0);
                    acc[2][1] = _mm512_dpbusd_epi32(acc[2][1], a, b1);
                    acc[2][2] = _mm512_dpbusd_epi32(acc[2][2], a, b2);
                    acc[2][3] = _mm512_dpbusd_epi32(acc[2][3], a, b3);
                    a = _mm512_set1_epi32(a3[k]);
                    acc[3][0] = _mm512_dpbusd_epi32(acc[3][0], a, b0);
                    acc[3][1] = _mm512_dpbusd_epi32(acc[3][1], a, b1);
                    acc[3][2] = _mm512_dpbusd_epi32(acc[3][2], a, b2);
                    acc[3][3] = _mm512_dpbusd_epi32(acc[3][3], a, b3);
                    a = _mm512_set1_epi32(a4[k]);
                    acc[4][0] = _mm512_dpbusd_epi32(acc[4][0], a, b0);
                    acc[4][1] = _mm512_dpbusd_epi32(acc[4][1], a, b1);
                    acc[4][2] = _mm512_dpbusd_epi32(acc[4][2], a, b2);
                    acc[4][3] = _mm512_dpbusd_epi32(acc[4][3], a, b3);
                    a = _mm512_set1_epi32(a5[k]);
                    acc[5][0] = _mm512_dpbusd_epi32(acc[5][0], a, b0);
                    acc[5][1] = _mm512_dpbusd_epi32(acc[5][1], a, b1);
                    acc[5][2] = _mm512_dpbusd_epi32(acc[5][2], a, b2);
                    acc[5][3] = _mm512_dpbusd_epi32(acc[5][3], a, b3);
                }
            } else {
                for (int64_t k = 0; k < K4; k++) {
                    __m512i b[4];
                    for (int64_t j = 0; j < nbr; j++)
                        b[j] = _mm512_loadu_si512(wbase + (size_t)(j * K4 + k) * 64);
                    for (int64_t i = 0; i < mr; i++) {
                        __m512i a = _mm512_set1_epi32(
                            ((const int32_t*)(A + (size_t)(m0 + i) * K4 * 4))[k]);
                        for (int64_t j = 0; j < nbr; j++)
                            acc[i][j] = _mm512_dpbusd_epi32(acc[i][j], a, b[j]);
                    }
                }
            }
            __m512d vmult = _mm512_set1_pd(mult);
            __m512d vzp = _mm512_set1_pd(zp);
            __m512d vmin = _mm512_set1_pd(qmin);
            __m512d vmax = _mm512_set1_pd(qmax);
            for (int64_t i = 0; i < mr; i++) {
                for (int64_t j = 0; j < nbr; j++) {
                    int8_t* o = out + (size_t)(m0 + i) * N + (nb + j) * 16;
                    __m256i lo = _mm512_extracti64x4_epi64(acc[i][j], 0);
                    __m256i hi = _mm512_extracti64x4_epi64(acc[i][j], 1);
                    __m512d v0 = _mm512_cvtepi32_pd(lo);
                    __m512d v1 = _mm512_cvtepi32_pd(hi);
                    v0 = _mm512_roundscale_pd(_mm512_mul_pd(v0, vmult), 0x08);
                    v1 = _mm512_roundscale_pd(_mm512_mul_pd(v1, vmult), 0x08);
                    v0 = _mm512_min_pd(_mm512_max_pd(_mm512_add_pd(v0, vzp), vmin), vmax);
                    v1 = _mm512_min_pd(_mm512_max_pd(_mm512_add_pd(v1, vzp), vmin), vmax);
                    __m256i i0 = _mm512_cvtpd_epi32(v0);
                    __m256i i1 = _mm512_cvtpd_epi32(v1);
                    int32_t idx[16];
                    _mm256_storeu_si256((__m256i*)idx, i0);
                    _mm256_storeu_si256((__m256i*)(idx + 8), i1);
                    for (int t = 0; t < 16; t++) o[t] = lut[idx[t] + 128];
                }
            }
        }
    }
}

/* Plain VNNI GEMM into raw int32 accumulators (same packing; used for
 * stages that need the pre-requantization accumulator). */
void fc_acc_i32(const uint8_t* A, const int8_t* Wp, const int32_t* offs,
                int32_t* out, int64_t M, int64_t K4, int64_t N) {
    int64_t nb_count = N / 16;
    for (int64_t m0 = 0; m0 < M; m0 += 8) {
        int64_t mr = (M - m0) < 8 ? (M - m0) : 8;
        for (int64_t nb = 0; nb < nb_count; nb++) {
            __m512i acc[8];
            for (int64_t i = 0; i < mr; i++)
                acc[i] = _mm512_loadu_si512(offs + nb * 16);
            const int8_t* wbase = Wp + (size_t)nb * K4 * 64;
            for (int64_t k = 0; k < K4; k++) {
                __m512i b = _mm512_loadu_si512(wbase + (size_t)k * 64);
                for (int64_t i = 0; i < mr; i++) {
                    __m512i a = _mm512_set1_epi32(
                        ((const int32_t*)(A + (size_t)(m0 + i) * K4 * 4))[k]);
                    acc[i] = _mm512_dpbusd_epi32(acc[i], a, b);
                }
            }
            for (int64_t i = 0; i < mr; i++)
                _mm512_storeu_si512(out + (size_t)(m0 + i) * N + nb * 16, acc[i]);
        }
    }
}
