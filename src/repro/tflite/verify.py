"""Quantization verification: float network vs quantized model.

A debugging tool the TFLite workflow sorely needs: given the original
float network and its quantized flat model, run both on probe data and
report per-layer error statistics — where precision is lost, and whether
the end-to-end predictions still agree.  Used by the quantization
ablation and available to library users tuning calibration data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.graph import Network
from repro.tflite.flatmodel import FlatModel
from repro.tflite.ops import ArgmaxOp

__all__ = ["LayerErrorStats", "VerificationReport", "verify"]


@dataclass(frozen=True)
class LayerErrorStats:
    """Error between float and dequantized activations at one layer.

    Attributes:
        name: Layer/op name.
        max_abs_error: Worst-case per-element deviation.
        rmse: Root-mean-square error.
        sqnr_db: Signal-to-quantization-noise ratio in dB (higher is
            better; 20+ dB per layer is typically lossless at the
            prediction level).
    """

    name: str
    max_abs_error: float
    rmse: float
    sqnr_db: float


@dataclass
class VerificationReport:
    """Full comparison of a float network and its quantized model.

    Attributes:
        layers: Per-layer error statistics (quantized ops with a float
            counterpart; the argmax layer is compared via agreement).
        prediction_agreement: Fraction of probe samples where the float
            and quantized argmax decisions coincide.
        num_samples: Probe-set size.
    """

    layers: list
    prediction_agreement: float
    num_samples: int

    @property
    def worst_layer(self) -> LayerErrorStats:
        """The layer with the lowest SQNR."""
        if not self.layers:
            raise ValueError("report has no layers")
        return min(self.layers, key=lambda stats: stats.sqnr_db)

    def summary(self) -> str:
        """Readable per-layer table."""
        lines = [
            f"quantization verification over {self.num_samples} samples:",
            f"  prediction agreement: {self.prediction_agreement:.4f}",
        ]
        for stats in self.layers:
            lines.append(
                f"  {stats.name:<16} max|err|={stats.max_abs_error:9.4f}  "
                f"rmse={stats.rmse:9.4f}  sqnr={stats.sqnr_db:6.1f} dB"
            )
        return "\n".join(lines)


def verify(network: Network, model: FlatModel,
           probe_data: np.ndarray) -> VerificationReport:
    """Compare a float network against its quantized model on probe data.

    Args:
        network: The original float network (pre-conversion).
        model: The quantized flat model produced from it.
        probe_data: Float samples, shape ``(num_samples, input_dim)``.

    Returns:
        The :class:`VerificationReport`.

    Raises:
        ValueError: If shapes do not line up or probe data is empty.
    """
    probe_data = np.asarray(probe_data, dtype=np.float32)
    if probe_data.ndim != 2 or len(probe_data) == 0:
        raise ValueError("probe_data must be a non-empty 2-D array")
    if probe_data.shape[1] != network.input_dim:
        raise ValueError(
            f"probe data has {probe_data.shape[1]} features but the "
            f"network expects {network.input_dim}"
        )
    float_layers = [layer for layer in network.layers]
    quant_ops = list(model.ops)
    comparable = min(len(float_layers), len(quant_ops))

    float_x = probe_data
    quant_x = model.input_spec.qparams.quantize(probe_data)
    layers: list[LayerErrorStats] = []
    float_scores = None
    quant_scores = None
    for index in range(comparable):
        float_x = float_layers[index].apply(float_x)
        quant_x = quant_ops[index].run(quant_x)
        if isinstance(quant_ops[index], ArgmaxOp):
            break
        dequantized = quant_ops[index].output_qparams.dequantize(quant_x)
        error = dequantized.astype(np.float64) - float_x.astype(np.float64)
        signal_power = float(np.mean(np.square(float_x, dtype=np.float64)))
        noise_power = float(np.mean(np.square(error)))
        sqnr_db = (
            10.0 * np.log10(signal_power / noise_power)
            if noise_power > 0 else np.inf
        )
        layers.append(LayerErrorStats(
            name=quant_ops[index].name,
            max_abs_error=float(np.abs(error).max()),
            rmse=float(np.sqrt(noise_power)),
            sqnr_db=float(sqnr_db),
        ))
        float_scores = float_x
        quant_scores = dequantized

    if float_scores is None or quant_scores is None:
        raise ValueError("model has no comparable quantized layers")
    agreement = float(np.mean(
        np.argmax(float_scores, axis=-1) == np.argmax(quant_scores, axis=-1)
    ))
    return VerificationReport(
        layers=layers,
        prediction_agreement=agreement,
        num_samples=len(probe_data),
    )
