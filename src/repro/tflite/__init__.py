"""A miniature TensorFlow-Lite stack.

The paper compiles the wide HDC network to a TFLite model and runs it
with ``tflite_runtime`` 2.1 on the Edge TPU.  Neither TensorFlow nor the
TFLite runtime is available offline, so this package reimplements the
parts the paper exercises, faithfully at the arithmetic level:

- **Post-training int8 quantization** (:mod:`repro.tflite.converter`):
  per-tensor affine activation quantization calibrated on a
  representative dataset, symmetric int8 weights, int32 biases — the
  exact scheme Edge TPU models require.
- **A flat serialized model container** (:mod:`repro.tflite.flatmodel`):
  a binary, struct-packed stand-in for the FlatBuffers ``.tflite`` file,
  with stable on-disk size accounting (model-transfer costs feed the
  runtime models).
- **A reference interpreter** (:mod:`repro.tflite.interpreter`) with
  TFLite-faithful integer kernels: FULLY_CONNECTED with int32
  accumulation and affine requantization, LUT-based TANH with the fixed
  1/128 output scale, and ARGMAX.

The Edge TPU simulator executes these same kernels bit-identically; only
the timing differs.
"""

from repro.tflite.quantization import (
    CalibrationObserver,
    PerChannelQuantParams,
    QuantParams,
    qparams_asymmetric,
    qparams_per_channel,
    qparams_symmetric,
)
from repro.tflite.tensor import TensorSpec
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, Op, TanhOp
from repro.tflite.flatmodel import FlatModel
from repro.tflite.converter import convert
from repro.tflite.interpreter import Interpreter
from repro.tflite.verify import LayerErrorStats, VerificationReport, verify

__all__ = [
    "ArgmaxOp",
    "CalibrationObserver",
    "FlatModel",
    "FullyConnectedOp",
    "Interpreter",
    "LayerErrorStats",
    "Op",
    "PerChannelQuantParams",
    "QuantParams",
    "TanhOp",
    "TensorSpec",
    "VerificationReport",
    "convert",
    "verify",
    "qparams_asymmetric",
    "qparams_per_channel",
    "qparams_symmetric",
]
