"""Quantized operator kernels with TFLite-faithful integer semantics.

Three ops cover the paper's models:

- ``FULLY_CONNECTED``: int8 inputs/weights, int32 accumulation, affine
  requantization to int8 — the op the Edge TPU's MXU accelerates.
- ``TANH``: 256-entry int8→int8 lookup table with TFLite's fixed output
  quantization (scale 1/128, zero point 0).
- ``ARGMAX``: int8 logits → int64 class index.

The Edge TPU simulator executes these exact kernels, so accelerator
results are bit-identical to the CPU reference interpreter — as on the
real device, where the compiler embeds the same quantized parameters.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.tflite.quantization import (
    PerChannelQuantParams,
    QuantParams,
    qparams_per_channel,
    qparams_symmetric,
)

__all__ = ["ArgmaxOp", "FullyConnectedOp", "Op", "TanhOp"]

# TFLite fixes int8 tanh output quantization to scale=1/128, zero_point=0,
# so the representable range is [-1, 127/128].
TANH_OUTPUT_QPARAMS = QuantParams(scale=1.0 / 128.0, zero_point=0, dtype="int8")

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1


@functools.lru_cache(maxsize=None)
def _tanh_lut(scale: float, zero_point: int, dtype: str) -> np.ndarray:
    """Shared int8 tanh lookup table for one input quantization grid.

    The table is a pure function of the input qparams (the output grid
    is TFLite's fixed one), so instances with the same input grid — in
    practice every encoder compiled from the same calibration data, and
    every bagging sub-model op — share one read-only array instead of
    rebuilding 256 tanh evaluations per op instance.
    """
    input_qparams = QuantParams(scale=scale, zero_point=zero_point,
                                dtype=dtype)
    # LUT indexed by (q - qmin): dequantize every possible int8 code,
    # apply float tanh, requantize into the fixed output grid.
    codes = np.arange(-128, 128, dtype=np.int32)
    lut = TANH_OUTPUT_QPARAMS.quantize(np.tanh(input_qparams.dequantize(codes)))
    lut.setflags(write=False)
    return lut


class Op:
    """Interface for quantized single-input/single-output operators."""

    kind: str = "OP"
    name: str
    input_qparams: QuantParams
    output_qparams: QuantParams | None

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute on a quantized ``(batch, input_dim)`` activation."""
        raise NotImplementedError

    def output_dim(self, input_dim: int) -> int:
        """Output width for ``input_dim``-wide input."""
        raise NotImplementedError

    @property
    def weight_bytes(self) -> int:
        """On-device parameter storage in bytes."""
        return 0

    def macs_per_sample(self) -> int:
        """Multiply-accumulate operations per sample (MXU work)."""
        return 0


class FullyConnectedOp(Op):
    """int8 fully connected: ``y = requant((x - in_zp) @ W + bias)``.

    Args:
        weights: Quantized int8 weights, shape ``(input_dim, output_dim)``.
        input_qparams: Activation qparams of the input tensor.
        weight_qparams: Symmetric qparams the weights were quantized
            with — per-tensor (:class:`QuantParams`) or per-output-
            channel (:class:`PerChannelQuantParams`).
        output_qparams: Activation qparams of the output tensor.
        bias: Optional int32 bias with scale ``in_scale * w_scale``
            (per-channel scales with per-channel weights).
        name: Operator name.
    """

    kind = "FULLY_CONNECTED"

    def __init__(self, weights: np.ndarray, input_qparams: QuantParams,
                 weight_qparams: QuantParams, output_qparams: QuantParams,
                 bias: np.ndarray | None = None, name: str = "fc"):
        weights = np.asarray(weights)
        if weights.dtype != np.int8:
            raise TypeError(f"weights must be int8, got {weights.dtype}")
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        if weight_qparams.zero_point != 0:
            raise ValueError("TFLite fully-connected weights must be symmetric")
        if isinstance(weight_qparams, PerChannelQuantParams) and \
                weight_qparams.num_channels != weights.shape[1]:
            raise ValueError(
                f"per-channel scales cover {weight_qparams.num_channels} "
                f"channels but weights have {weights.shape[1]} outputs"
            )
        if bias is not None:
            bias = np.asarray(bias)
            if bias.dtype != np.int32:
                raise TypeError(f"bias must be int32, got {bias.dtype}")
            if bias.shape != (weights.shape[1],):
                raise ValueError(
                    f"bias shape {bias.shape} does not match output dim "
                    f"{weights.shape[1]}"
                )
        self.weights = weights
        self.bias = bias
        self.input_qparams = input_qparams
        self.weight_qparams = weight_qparams
        self.output_qparams = output_qparams
        self.name = name
        # Requantization multiplier: real accumulator value per unit is
        # in_scale * w_scale; the output grid is out_scale.  A per-channel
        # weight scale yields a per-output-column multiplier vector.
        if isinstance(weight_qparams, PerChannelQuantParams):
            self._multiplier = (
                input_qparams.scale * weight_qparams.scales_array()
                / output_qparams.scale
            )
        else:
            self._multiplier = (
                input_qparams.scale * weight_qparams.scale
                / output_qparams.scale
            )

    @classmethod
    def from_float(cls, weights: np.ndarray, input_qparams: QuantParams,
                   output_qparams: QuantParams, bias: np.ndarray | None = None,
                   per_channel: bool = False,
                   name: str = "fc") -> "FullyConnectedOp":
        """Quantize float weights (symmetric int8) and bias (int32).

        Args:
            per_channel: Use per-output-channel weight scales (TFLite's
                higher-precision scheme) instead of one tensor-wide
                scale.
        """
        weights = np.asarray(weights, dtype=np.float32)
        if per_channel:
            weight_qparams = qparams_per_channel(weights)
        else:
            weight_qparams = qparams_symmetric(float(np.abs(weights).max()))
        weights_q = weight_qparams.quantize(weights)
        bias_q = None
        if bias is not None:
            if per_channel:
                bias_scale = (
                    input_qparams.scale * weight_qparams.scales_array()
                )
            else:
                bias_scale = input_qparams.scale * weight_qparams.scale
            bias_q = np.clip(
                np.round(np.asarray(bias, dtype=np.float64) / bias_scale),
                _INT32_MIN, _INT32_MAX,
            ).astype(np.int32)
        return cls(weights_q, input_qparams, weight_qparams, output_qparams,
                   bias=bias_q, name=name)

    @property
    def input_dim(self) -> int:
        return self.weights.shape[0]

    def output_dim(self, input_dim: int) -> int:
        if input_dim != self.weights.shape[0]:
            raise ValueError(
                f"op {self.name!r} expects input dim {self.weights.shape[0]}, "
                f"got {input_dim}"
            )
        return self.weights.shape[1]

    @property
    def weight_bytes(self) -> int:
        total = self.weights.size  # int8: one byte per weight
        if self.bias is not None:
            total += self.bias.size * 4
        return total

    def macs_per_sample(self) -> int:
        return self.weights.size

    def accumulate(self, x: np.ndarray) -> np.ndarray:
        """The int32 accumulator values (pre-requantization), for testing."""
        if x.dtype != np.int8:
            raise TypeError(f"input must be int8, got {x.dtype}")
        # int64 accumulation guards against overflow in numpy; TFLite's
        # int32 accumulator cannot overflow for our layer sizes, which the
        # range check below asserts.
        centered = x.astype(np.int64) - self.input_qparams.zero_point
        acc = centered @ self.weights.astype(np.int64)
        if self.bias is not None:
            acc = acc + self.bias.astype(np.int64)
        if acc.min(initial=0) < _INT32_MIN or acc.max(initial=0) > _INT32_MAX:
            raise OverflowError(
                f"op {self.name!r}: int32 accumulator overflow "
                f"(range [{acc.min()}, {acc.max()}])"
            )
        return acc.astype(np.int32)

    def run(self, x: np.ndarray) -> np.ndarray:
        acc = self.accumulate(x)
        out = np.round(acc.astype(np.float64) * self._multiplier)
        out = out + self.output_qparams.zero_point
        return np.clip(
            out, self.output_qparams.qmin, self.output_qparams.qmax
        ).astype(np.int8)


class TanhOp(Op):
    """int8 tanh via a 256-entry lookup table (TFLite's implementation).

    Output quantization is TFLite's fixed ``scale=1/128, zero_point=0``.
    """

    kind = "TANH"

    def __init__(self, input_qparams: QuantParams, name: str = "tanh"):
        if input_qparams.dtype != "int8":
            raise ValueError("int8 tanh requires an int8 input tensor")
        self.input_qparams = input_qparams
        self.output_qparams = TANH_OUTPUT_QPARAMS
        self.name = name
        self.lut = _tanh_lut(
            input_qparams.scale, input_qparams.zero_point,
            input_qparams.dtype,
        )

    def output_dim(self, input_dim: int) -> int:
        return input_dim

    @property
    def weight_bytes(self) -> int:
        return self.lut.size  # the table itself

    def run(self, x: np.ndarray) -> np.ndarray:
        if x.dtype != np.int8:
            raise TypeError(f"input must be int8, got {x.dtype}")
        return self.lut[x.astype(np.int32) + 128]


class ArgmaxOp(Op):
    """Class prediction: index of the maximum quantized logit."""

    kind = "ARGMAX"

    def __init__(self, input_qparams: QuantParams, name: str = "argmax"):
        self.input_qparams = input_qparams
        self.output_qparams = None
        self.name = name

    def output_dim(self, input_dim: int) -> int:
        if input_dim < 1:
            raise ValueError("argmax needs at least one input")
        return 1

    def run(self, x: np.ndarray) -> np.ndarray:
        if x.dtype != np.int8:
            raise TypeError(f"input must be int8, got {x.dtype}")
        return np.argmax(x, axis=-1, keepdims=True).astype(np.int64)
