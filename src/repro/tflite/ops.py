"""Quantized operator kernels with TFLite-faithful integer semantics.

Three ops cover the paper's models:

- ``FULLY_CONNECTED``: int8 inputs/weights, int32 accumulation, affine
  requantization to int8 — the op the Edge TPU's MXU accelerates.
- ``TANH``: 256-entry int8→int8 lookup table with TFLite's fixed output
  quantization (scale 1/128, zero point 0).
- ``ARGMAX``: int8 logits → int64 class index.

The Edge TPU simulator executes these exact kernels, so accelerator
results are bit-identical to the CPU reference interpreter — as on the
real device, where the compiler embeds the same quantized parameters.

Fast path
---------

``FullyConnectedOp`` precomputes, once per op (weights are immutable):

- widened ``int64``/``float64`` copies of the weight matrix, so ``run``
  never re-casts parameters per invocation;
- a per-column offset ``-in_zp * W.sum(axis=0) (+ bias)`` folding the
  input zero-point centering out of the matmul, so the kernel consumes
  raw int8 codes;
- static worst-case accumulator bounds from the weights.  When the
  bound proves the int32 accumulator can never overflow, the per-invoke
  ``O(batch·d)`` min/max scan is skipped; when it proves every partial
  sum fits a float64 mantissa (``< 2^53`` — true by orders of magnitude
  for d = 10,000 int8 layers), the matmul runs in float64 via BLAS and
  the result is *bit-identical* to the integer path, which is kept as
  the fallback (and, as :meth:`FullyConnectedOp.run_reference`, as the
  frozen seed oracle the equivalence tests and benchmarks compare
  against).

:func:`fused_stages` additionally fuses ``FC→TANH`` and
``FC→requant→ARGMAX`` pairs so executors skip materializing the
intermediate int8 tensor; the interpreter, the Edge TPU device
simulator and the serving CPU fallback all dispatch through it.
"""

from __future__ import annotations

import functools
from typing import Callable, Sequence

import numpy as np

from repro.tflite.quantization import (
    PerChannelQuantParams,
    QuantParams,
    qparams_per_channel,
    qparams_symmetric,
)

__all__ = ["ArgmaxOp", "FullyConnectedOp", "Op", "TanhOp", "fused_stages"]

# TFLite fixes int8 tanh output quantization to scale=1/128, zero_point=0,
# so the representable range is [-1, 127/128].
TANH_OUTPUT_QPARAMS = QuantParams(scale=1.0 / 128.0, zero_point=0, dtype="int8")

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1

# Integer sums are exact in float64 as long as every partial sum stays
# below the 53-bit mantissa, regardless of the association order BLAS
# picks.  Module-level so tests can shrink it to force the integer
# fallback on layers far too small to exceed the real bound.
_FLOAT64_EXACT_LIMIT = 2**53

# Same argument with the 24-bit float32 mantissa: when the worst-case
# partial sum stays below 2^24, the GEMM can run in float32 (half the
# memory traffic of the float64 path) and still produce exact integer
# accumulators.  The encoder layers of the paper's models qualify; wide
# classifier layers generally do not and stay on the float64 path.
_FLOAT32_EXACT_LIMIT = 2**24


@functools.lru_cache(maxsize=None)
def _tanh_lut(scale: float, zero_point: int, dtype: str) -> np.ndarray:
    """Shared int8 tanh lookup table for one input quantization grid.

    The table is a pure function of the input qparams (the output grid
    is TFLite's fixed one), so instances with the same input grid — in
    practice every encoder compiled from the same calibration data, and
    every bagging sub-model op — share one read-only array instead of
    rebuilding 256 tanh evaluations per op instance.
    """
    input_qparams = QuantParams(scale=scale, zero_point=zero_point,
                                dtype=dtype)
    # LUT indexed by (q - qmin): dequantize every possible int8 code,
    # apply float tanh, requantize into the fixed output grid.
    codes = np.arange(-128, 128, dtype=np.int32)
    lut = TANH_OUTPUT_QPARAMS.quantize(np.tanh(input_qparams.dequantize(codes)))
    lut.setflags(write=False)
    return lut


@functools.lru_cache(maxsize=None)
def _tanh_lut_u8view(scale: float, zero_point: int, dtype: str) -> np.ndarray:
    """The tanh LUT rotated to be indexed by the uint8 *view* of int8 codes.

    ``int8 -> uint8`` reinterpretation maps code ``q`` to ``q mod 256``,
    so rotating the ``(q + 128)``-indexed table by 128 lets ``run``
    gather straight from ``x.view(np.uint8)`` with no
    ``astype(int32) + 128`` temporary.
    """
    lut = np.roll(_tanh_lut(scale, zero_point, dtype), -128)
    lut.setflags(write=False)
    return lut


class Op:
    """Interface for quantized single-input/single-output operators."""

    kind: str = "OP"
    name: str
    input_qparams: QuantParams
    output_qparams: QuantParams | None

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute on a quantized ``(batch, input_dim)`` activation."""
        raise NotImplementedError

    def output_dim(self, input_dim: int) -> int:
        """Output width for ``input_dim``-wide input."""
        raise NotImplementedError

    @property
    def weight_bytes(self) -> int:
        """On-device parameter storage in bytes."""
        return 0

    def macs_per_sample(self) -> int:
        """Multiply-accumulate operations per sample (MXU work)."""
        return 0


class FullyConnectedOp(Op):
    """int8 fully connected: ``y = requant((x - in_zp) @ W + bias)``.

    Weights and bias are treated as immutable after construction (the
    op caches widened copies and precomputed bounds); the stored views
    are read-only to enforce that.

    Args:
        weights: Quantized int8 weights, shape ``(input_dim, output_dim)``.
        input_qparams: Activation qparams of the input tensor.
        weight_qparams: Symmetric qparams the weights were quantized
            with — per-tensor (:class:`QuantParams`) or per-output-
            channel (:class:`PerChannelQuantParams`).
        output_qparams: Activation qparams of the output tensor.
        bias: Optional int32 bias with scale ``in_scale * w_scale``
            (per-channel scales with per-channel weights).
        name: Operator name.
    """

    kind = "FULLY_CONNECTED"

    def __init__(self, weights: np.ndarray, input_qparams: QuantParams,
                 weight_qparams: QuantParams, output_qparams: QuantParams,
                 bias: np.ndarray | None = None, name: str = "fc"):
        weights = np.asarray(weights)
        if weights.dtype != np.int8:
            raise TypeError(f"weights must be int8, got {weights.dtype}")
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        if weight_qparams.zero_point != 0:
            raise ValueError("TFLite fully-connected weights must be symmetric")
        if isinstance(weight_qparams, PerChannelQuantParams) and \
                weight_qparams.num_channels != weights.shape[1]:
            raise ValueError(
                f"per-channel scales cover {weight_qparams.num_channels} "
                f"channels but weights have {weights.shape[1]} outputs"
            )
        if bias is not None:
            bias = np.asarray(bias)
            if bias.dtype != np.int32:
                raise TypeError(f"bias must be int32, got {bias.dtype}")
            if bias.shape != (weights.shape[1],):
                raise ValueError(
                    f"bias shape {bias.shape} does not match output dim "
                    f"{weights.shape[1]}"
                )
            bias = bias.view()
            bias.setflags(write=False)
        weights = weights.view()
        weights.setflags(write=False)
        self.weights = weights
        self.bias = bias
        self.input_qparams = input_qparams
        self.weight_qparams = weight_qparams
        self.output_qparams = output_qparams
        self.name = name
        # Requantization multiplier: real accumulator value per unit is
        # in_scale * w_scale; the output grid is out_scale.  A per-channel
        # weight scale yields a per-output-column multiplier vector.
        if isinstance(weight_qparams, PerChannelQuantParams):
            self._multiplier = (
                input_qparams.scale * weight_qparams.scales_array()
                / output_qparams.scale
            )
        else:
            self._multiplier = (
                input_qparams.scale * weight_qparams.scale
                / output_qparams.scale
            )
        # --- fast-path precomputation (weights are immutable) ---------
        zp = input_qparams.zero_point
        self._weights_i64 = weights.astype(np.int64)
        self._weights_f64 = weights.astype(np.float64)
        column_sum = self._weights_i64.sum(axis=0)
        # Fold the input zero-point centering into a per-column offset so
        # the matmul consumes raw int8 codes:
        #   (x - zp) @ W + b  ==  x @ W + (-zp * W.sum(axis=0) + b)
        offset = -zp * column_sum
        if bias is not None:
            offset = offset + bias.astype(np.int64)
        self._offset_i64 = offset
        self._offset_f64 = offset.astype(np.float64)
        # Static worst-case accumulator bound, per column:
        #   |acc_j| <= max|x - zp| * sum_i |W_ij| + |b_j|
        column_abs_sum = np.abs(self._weights_i64).sum(axis=0)
        max_centered = max(abs(input_qparams.qmin - zp),
                           abs(input_qparams.qmax - zp))
        acc_bound = max_centered * column_abs_sum
        if bias is not None:
            acc_bound = acc_bound + np.abs(bias.astype(np.int64))
        self._acc_abs_bound = int(acc_bound.max(initial=0))
        # When the static bound already proves the int32 accumulator
        # cannot overflow, the per-invoke min/max scan is skipped.
        self._static_int32_safe = self._acc_abs_bound <= _INT32_MAX
        # The BLAS path computes x @ W in float64 on raw codes.  Every
        # partial sum (in any association order) is bounded by
        # max|x| * sum_i |W_ij|, and the offset addition by that plus
        # |offset_j|; if the worst column stays below 2^53 every
        # intermediate is an exactly-representable integer.
        max_raw = max(abs(input_qparams.qmin), abs(input_qparams.qmax))
        raw_bound = max_raw * column_abs_sum + np.abs(offset)
        self._raw_abs_bound = int(raw_bound.max(initial=0))
        self._blas_exact = self._raw_abs_bound < _FLOAT64_EXACT_LIMIT
        self._blas_f32_exact = self._raw_abs_bound < _FLOAT32_EXACT_LIMIT

    @classmethod
    def from_float(cls, weights: np.ndarray, input_qparams: QuantParams,
                   output_qparams: QuantParams, bias: np.ndarray | None = None,
                   per_channel: bool = False,
                   name: str = "fc") -> "FullyConnectedOp":
        """Quantize float weights (symmetric int8) and bias (int32).

        Args:
            per_channel: Use per-output-channel weight scales (TFLite's
                higher-precision scheme) instead of one tensor-wide
                scale.
        """
        weights = np.asarray(weights, dtype=np.float32)
        if per_channel:
            weight_qparams = qparams_per_channel(weights)
        else:
            weight_qparams = qparams_symmetric(float(np.abs(weights).max()))
        weights_q = weight_qparams.quantize(weights)
        bias_q = None
        if bias is not None:
            if per_channel:
                bias_scale = (
                    input_qparams.scale * weight_qparams.scales_array()
                )
            else:
                bias_scale = input_qparams.scale * weight_qparams.scale
            bias_q = np.clip(
                np.round(np.asarray(bias, dtype=np.float64) / bias_scale),
                _INT32_MIN, _INT32_MAX,
            ).astype(np.int32)
        return cls(weights_q, input_qparams, weight_qparams, output_qparams,
                   bias=bias_q, name=name)

    @property
    def input_dim(self) -> int:
        return self.weights.shape[0]

    def output_dim(self, input_dim: int) -> int:
        if input_dim != self.weights.shape[0]:
            raise ValueError(
                f"op {self.name!r} expects input dim {self.weights.shape[0]}, "
                f"got {input_dim}"
            )
        return self.weights.shape[1]

    @property
    def weight_bytes(self) -> int:
        total = self.weights.size  # int8: one byte per weight
        if self.bias is not None:
            total += self.bias.size * 4
        return total

    def macs_per_sample(self) -> int:
        return self.weights.size

    # ------------------------------------------------------------------
    # Accumulation: BLAS fast path, integer fallback, frozen oracle
    # ------------------------------------------------------------------

    def _acc_f64(self, x: np.ndarray) -> np.ndarray:
        """The accumulator as exact integers in float64, overflow-checked.

        Dispatches to the BLAS path when the static bound proves float64
        exactness, else to the cached-int64 fallback; either way the
        values equal the int32 accumulator TFLite would produce (the
        fallback and :meth:`accumulate_reference` assert as much in
        tests).
        """
        if x.dtype != np.int8:
            raise TypeError(f"input must be int8, got {x.dtype}")
        if self._blas_exact:
            acc = x.astype(np.float64) @ self._weights_f64
            acc += self._offset_f64
        else:
            acc = (x.astype(np.int64) @ self._weights_i64
                   + self._offset_i64).astype(np.float64)
        if not self._static_int32_safe:
            if acc.min(initial=0) < _INT32_MIN or acc.max(initial=0) > _INT32_MAX:
                raise OverflowError(
                    f"op {self.name!r}: int32 accumulator overflow "
                    f"(range [{acc.min()}, {acc.max()}])"
                )
        return acc

    def accumulate(self, x: np.ndarray) -> np.ndarray:
        """The int32 accumulator values (pre-requantization), for testing."""
        return self._acc_f64(x).astype(np.int32)

    def accumulate_reference(self, x: np.ndarray) -> np.ndarray:
        """The seed implementation, frozen as the bit-exactness oracle.

        Re-casts weights per call and scans the accumulator range per
        invoke — exactly the pre-fast-path kernel.  Kept (and exercised
        by the equivalence tests and the fastpath benchmark) so any
        divergence in the optimized paths is caught against unchanged
        code rather than against a refactor of itself.
        """
        if x.dtype != np.int8:
            raise TypeError(f"input must be int8, got {x.dtype}")
        # int64 accumulation guards against overflow in numpy; TFLite's
        # int32 accumulator cannot overflow for our layer sizes, which the
        # range check below asserts.
        centered = x.astype(np.int64) - self.input_qparams.zero_point
        acc = centered @ self.weights.astype(np.int64)
        if self.bias is not None:
            acc = acc + self.bias.astype(np.int64)
        if acc.min(initial=0) < _INT32_MIN or acc.max(initial=0) > _INT32_MAX:
            raise OverflowError(
                f"op {self.name!r}: int32 accumulator overflow "
                f"(range [{acc.min()}, {acc.max()}])"
            )
        return acc.astype(np.int32)

    def _requantize(self, acc: np.ndarray) -> np.ndarray:
        """Float64 accumulator -> requantized float64 codes (in place)."""
        out = acc * self._multiplier
        np.round(out, out=out)
        out += self.output_qparams.zero_point
        np.clip(out, self.output_qparams.qmin, self.output_qparams.qmax,
                out=out)
        return out

    def run(self, x: np.ndarray) -> np.ndarray:
        return self._requantize(self._acc_f64(x)).astype(np.int8)

    # ------------------------------------------------------------------
    # In-place (arena) execution paths — zero steady-state allocations
    # ------------------------------------------------------------------

    @property
    def gemm_dtype(self) -> np.dtype:
        """The dtype the in-place accumulator path computes in.

        ``float32`` when the static bound proves 24-bit exactness,
        ``float64`` under the 53-bit bound, else ``int64`` (the
        checked integer fallback).  The serving plan sizes its scratch
        buffers from this.
        """
        if self._blas_f32_exact:
            return np.dtype(np.float32)
        if self._blas_exact:
            return np.dtype(np.float64)
        return np.dtype(np.int64)

    def _gemm_operands(self) -> tuple:
        """Weights and folded offset widened to :attr:`gemm_dtype`.

        The float32 copies are built lazily (only in-place callers need
        them) and cached — weights are immutable.
        """
        dtype = self.gemm_dtype
        if dtype == np.float64:
            return self._weights_f64, self._offset_f64
        if dtype == np.int64:
            return self._weights_i64, self._offset_i64
        cached = self.__dict__.get("_gemm_operands_f32")
        if cached is None:
            cached = (self._weights_f64.astype(np.float32),
                      self._offset_f64.astype(np.float32))
            self.__dict__["_gemm_operands_f32"] = cached
        return cached

    def accumulate_into(self, x: np.ndarray, acc: np.ndarray,
                        x_wide: np.ndarray,
                        offset: np.ndarray | None = None) -> np.ndarray:
        """Exact accumulator into preallocated buffers (no heap churn).

        Value-identical to :meth:`_acc_f64` (same static exactness
        bounds, same overflow check), but the widened input lives in
        ``x_wide`` and the accumulator in ``acc`` — both of dtype
        :attr:`gemm_dtype`, preallocated by the caller (the serving
        plan's arena).

        Args:
            x: int8 input ``(rows, input_dim)``.
            acc: ``(rows, output_dim)`` destination, dtype
                :attr:`gemm_dtype`.
            x_wide: ``(rows, input_dim)`` scratch, dtype
                :attr:`gemm_dtype`.
            offset: Optional pre-tiled ``(rows, output_dim)`` copy of
                the folded offset row.  Broadcasting the ``(n,)`` row
                makes numpy's ufunc machinery malloc a transient
                iteration buffer; a same-shape operand keeps the add
                allocation-free (identical values either way).
        """
        if x.dtype != np.int8:
            raise TypeError(f"input must be int8, got {x.dtype}")
        weights, row_offset = self._gemm_operands()
        np.copyto(x_wide, x, casting="unsafe")
        np.matmul(x_wide, weights, out=acc)
        acc += row_offset if offset is None else offset
        if not self._static_int32_safe:
            if acc.min(initial=0) < _INT32_MIN \
                    or acc.max(initial=0) > _INT32_MAX:
                raise OverflowError(
                    f"op {self.name!r}: int32 accumulator overflow "
                    f"(range [{acc.min()}, {acc.max()}])"
                )
        return acc

    def requantize_into(self, acc: np.ndarray, out: np.ndarray,
                        multiplier: np.ndarray | None = None) -> np.ndarray:
        """:meth:`_requantize` into a preallocated float64 buffer.

        ``acc`` may be any :attr:`gemm_dtype`; the rounded, clipped
        codes land in ``out`` as exact integers in the output grid,
        bit-identical to the allocating path.

        Args:
            acc: The raw accumulator.
            out: ``(rows, output_dim)`` float64 destination.
            multiplier: Optional pre-tiled ``(rows, output_dim)`` copy
                of a per-channel multiplier row — same-shape operands
                skip numpy's transient broadcast buffer (see
                :meth:`accumulate_into`).
        """
        if acc.dtype != out.dtype:
            # Widen first: a ufunc with a float32 input would otherwise
            # select the float32 loop and only cast the *result* to the
            # float64 out, losing the low bits the f64 multiply keeps.
            # The accumulator is an exact integer under 2^53, so the
            # widening itself is lossless.
            np.copyto(out, acc)
            acc = out
        np.multiply(acc, self._multiplier if multiplier is None
                    else multiplier, out=out)
        np.round(out, out=out)
        out += self.output_qparams.zero_point
        np.clip(out, self.output_qparams.qmin, self.output_qparams.qmax,
                out=out)
        return out

    def run_reference(self, x: np.ndarray) -> np.ndarray:
        """The seed ``run``, frozen alongside :meth:`accumulate_reference`."""
        acc = self.accumulate_reference(x)
        out = np.round(acc.astype(np.float64) * self._multiplier)
        out = out + self.output_qparams.zero_point
        return np.clip(
            out, self.output_qparams.qmin, self.output_qparams.qmax
        ).astype(np.int8)

    # ------------------------------------------------------------------
    # Fused kernels (internal dispatch via :func:`fused_stages`)
    # ------------------------------------------------------------------

    def run_tanh_fused(self, x: np.ndarray, tanh: "TanhOp") -> np.ndarray:
        """``FC -> TANH`` without materializing the intermediate int8 tensor.

        The requantized codes stay float64 (exact integers in
        ``[-128, 127]``) and index the tanh LUT directly; bit-identical
        to ``tanh.run(self.run(x))``.
        """
        codes = self._requantize(self._acc_f64(x))
        codes += 128
        return tanh.lut[codes.astype(np.intp)]

    def run_argmax_fused(self, x: np.ndarray) -> np.ndarray:
        """``FC -> requant -> ARGMAX`` without the int8 intermediate.

        ``argmax`` over the clipped float64 codes picks the same (first)
        maximum as over their int8 cast, so this is bit-identical to
        ``argmax.run(self.run(x))``.
        """
        codes = self._requantize(self._acc_f64(x))
        return np.argmax(codes, axis=-1, keepdims=True).astype(np.int64)


class TanhOp(Op):
    """int8 tanh via a 256-entry lookup table (TFLite's implementation).

    Output quantization is TFLite's fixed ``scale=1/128, zero_point=0``.
    """

    kind = "TANH"

    def __init__(self, input_qparams: QuantParams, name: str = "tanh"):
        if input_qparams.dtype != "int8":
            raise ValueError("int8 tanh requires an int8 input tensor")
        self.input_qparams = input_qparams
        self.output_qparams = TANH_OUTPUT_QPARAMS
        self.name = name
        self.lut = _tanh_lut(
            input_qparams.scale, input_qparams.zero_point,
            input_qparams.dtype,
        )
        # Rotation of `lut` gathered via the uint8 reinterpretation of
        # the int8 input, skipping the `astype(int32) + 128` temporary.
        self._lut_u8 = _tanh_lut_u8view(
            input_qparams.scale, input_qparams.zero_point,
            input_qparams.dtype,
        )

    def output_dim(self, input_dim: int) -> int:
        return input_dim

    @property
    def weight_bytes(self) -> int:
        return self.lut.size  # the table itself

    def run(self, x: np.ndarray) -> np.ndarray:
        if x.dtype != np.int8:
            raise TypeError(f"input must be int8, got {x.dtype}")
        return self._lut_u8[x.view(np.uint8)]


class ArgmaxOp(Op):
    """Class prediction: index of the maximum quantized logit."""

    kind = "ARGMAX"

    def __init__(self, input_qparams: QuantParams, name: str = "argmax"):
        self.input_qparams = input_qparams
        self.output_qparams = None
        self.name = name

    def output_dim(self, input_dim: int) -> int:
        if input_dim < 1:
            raise ValueError("argmax needs at least one input")
        return 1

    def run(self, x: np.ndarray) -> np.ndarray:
        if x.dtype != np.int8:
            raise TypeError(f"input must be int8, got {x.dtype}")
        return np.argmax(x, axis=-1, keepdims=True).astype(np.int64)


def fused_stages(ops: Sequence[Op]) -> list[Callable[[np.ndarray], np.ndarray]]:
    """Compile an op chain into fused execution stages.

    ``FULLY_CONNECTED`` immediately followed by ``TANH`` or ``ARGMAX``
    collapses into one stage that never materializes the intermediate
    int8 tensor; every other op becomes its own ``op.run`` stage.  The
    stage list is pure dispatch — outputs are bit-identical to running
    the ops one by one — so executors (the reference interpreter, the
    Edge TPU device simulator, the serving CPU fallback) can share it
    without changing any public surface.  Callers should build the list
    once per op chain and reuse it across invocations.
    """
    stages: list[Callable[[np.ndarray], np.ndarray]] = []
    index = 0
    ops = list(ops)
    while index < len(ops):
        op = ops[index]
        nxt = ops[index + 1] if index + 1 < len(ops) else None
        if isinstance(op, FullyConnectedOp) and isinstance(nxt, TanhOp):
            stages.append(functools.partial(op.run_tanh_fused, tanh=nxt))
            index += 2
        elif isinstance(op, FullyConnectedOp) and isinstance(nxt, ArgmaxOp):
            stages.append(op.run_argmax_fused)
            index += 2
        else:
            stages.append(op.run)
            index += 1
    return stages
