"""The serialized quantized-model container (our ``.tflite`` stand-in).

A :class:`FlatModel` is the unit the rest of the system exchanges: the
converter produces one, the reference interpreter executes one, and the
Edge TPU compiler consumes one.  Serialization is a deterministic
struct-packed binary format, so model *size* — which drives the
host→device transfer-time model — is well defined.
"""

from __future__ import annotations

import io
import struct

import numpy as np

from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, Op, TanhOp
from repro.tflite.quantization import PerChannelQuantParams, QuantParams
from repro.tflite.tensor import TensorSpec

__all__ = ["FlatModel"]

_MAGIC = b"RTFL"
_VERSION = 1
_KIND_CODES = {"FULLY_CONNECTED": 1, "TANH": 2, "ARGMAX": 3}
_DTYPE_CODES = {"int8": 1, "int16": 2, "int32": 3}
_CODE_DTYPES = {code: name for name, code in _DTYPE_CODES.items()}


def _write_str(buf: io.BytesIO, text: str) -> None:
    data = text.encode("utf-8")
    buf.write(struct.pack("<H", len(data)))
    buf.write(data)


def _read_str(buf: io.BytesIO) -> str:
    (length,) = struct.unpack("<H", buf.read(2))
    return buf.read(length).decode("utf-8")


def _write_qparams(buf: io.BytesIO, qparams) -> None:
    if qparams is None:
        buf.write(struct.pack("<B", 0))
        return
    if isinstance(qparams, PerChannelQuantParams):
        buf.write(struct.pack("<BBI", 2, _DTYPE_CODES[qparams.dtype],
                              qparams.num_channels))
        buf.write(struct.pack(f"<{qparams.num_channels}d", *qparams.scales))
        return
    buf.write(struct.pack("<BdiB", 1, qparams.scale, qparams.zero_point,
                          _DTYPE_CODES[qparams.dtype]))


def _read_qparams(buf: io.BytesIO):
    (kind,) = struct.unpack("<B", buf.read(1))
    if kind == 0:
        return None
    if kind == 2:
        dtype_code, num_channels = struct.unpack("<BI", buf.read(5))
        scales = struct.unpack(f"<{num_channels}d",
                               buf.read(8 * num_channels))
        return PerChannelQuantParams(scales=scales,
                                     dtype=_CODE_DTYPES[dtype_code])
    scale, zero_point, dtype_code = struct.unpack("<diB", buf.read(13))
    return QuantParams(scale=scale, zero_point=zero_point,
                       dtype=_CODE_DTYPES[dtype_code])


def _write_array(buf: io.BytesIO, array: np.ndarray) -> None:
    buf.write(struct.pack("<B", array.ndim))
    for dim in array.shape:
        buf.write(struct.pack("<I", dim))
    buf.write(struct.pack("<B", _DTYPE_CODES[array.dtype.name]))
    buf.write(np.ascontiguousarray(array).tobytes())


def _read_array(buf: io.BytesIO) -> np.ndarray:
    (ndim,) = struct.unpack("<B", buf.read(1))
    shape = tuple(struct.unpack("<I", buf.read(4))[0] for _ in range(ndim))
    (dtype_code,) = struct.unpack("<B", buf.read(1))
    dtype = np.dtype(_CODE_DTYPES[dtype_code])
    count = int(np.prod(shape)) if shape else 1
    data = buf.read(count * dtype.itemsize)
    return np.frombuffer(data, dtype=dtype).reshape(shape).copy()


class FlatModel:
    """A quantized model: ordered op list plus input/output tensor specs.

    Args:
        name: Model name.
        input_spec: Quantized input tensor metadata.
        ops: Operator chain; shapes must link up.
        output_name: Name for the synthesized output spec.

    Raises:
        ValueError: If op shapes do not chain from the input spec.
    """

    def __init__(self, name: str, input_spec: TensorSpec, ops: list[Op],
                 output_name: str = "output"):
        if not ops:
            raise ValueError("a model needs at least one op")
        if input_spec.qparams is None:
            raise ValueError("model input must be quantized")
        self.name = name
        self.input_spec = input_spec
        self.ops = list(ops)
        width = input_spec.size
        for op in self.ops:
            width = op.output_dim(width)
        self.output_spec = TensorSpec(
            name=output_name, shape=(width,),
            qparams=self.ops[-1].output_qparams,
        )

    @property
    def output_is_index(self) -> bool:
        """True when the final op emits class indices (argmax)."""
        return isinstance(self.ops[-1], ArgmaxOp)

    def weight_bytes(self) -> int:
        """Total on-device parameter bytes across all ops."""
        return sum(op.weight_bytes for op in self.ops)

    def macs_per_sample(self) -> int:
        """Total MXU multiply-accumulates per sample."""
        return sum(op.macs_per_sample() for op in self.ops)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the deterministic binary container format."""
        buf = io.BytesIO()
        buf.write(_MAGIC)
        buf.write(struct.pack("<H", _VERSION))
        _write_str(buf, self.name)
        self._write_spec(buf, self.input_spec)
        buf.write(struct.pack("<H", len(self.ops)))
        for op in self.ops:
            buf.write(struct.pack("<B", _KIND_CODES[op.kind]))
            _write_str(buf, op.name)
            _write_qparams(buf, op.input_qparams)
            if isinstance(op, FullyConnectedOp):
                _write_qparams(buf, op.weight_qparams)
                _write_qparams(buf, op.output_qparams)
                _write_array(buf, op.weights)
                if op.bias is None:
                    buf.write(struct.pack("<B", 0))
                else:
                    buf.write(struct.pack("<B", 1))
                    _write_array(buf, op.bias)
        return buf.getvalue()

    @staticmethod
    def _write_spec(buf: io.BytesIO, spec: TensorSpec) -> None:
        _write_str(buf, spec.name)
        buf.write(struct.pack("<B", len(spec.shape)))
        for dim in spec.shape:
            buf.write(struct.pack("<I", dim))
        _write_qparams(buf, spec.qparams)

    @staticmethod
    def _read_spec(buf: io.BytesIO) -> TensorSpec:
        name = _read_str(buf)
        (ndim,) = struct.unpack("<B", buf.read(1))
        shape = tuple(struct.unpack("<I", buf.read(4))[0] for _ in range(ndim))
        return TensorSpec(name=name, shape=shape, qparams=_read_qparams(buf))

    @classmethod
    def from_bytes(cls, data: bytes) -> "FlatModel":
        """Deserialize a model written by :meth:`to_bytes`.

        Raises:
            ValueError: On a bad magic number or unsupported version.
        """
        buf = io.BytesIO(data)
        magic = buf.read(4)
        if magic != _MAGIC:
            raise ValueError(f"not a flat model (magic {magic!r})")
        (version,) = struct.unpack("<H", buf.read(2))
        if version != _VERSION:
            raise ValueError(f"unsupported model version {version}")
        name = _read_str(buf)
        input_spec = cls._read_spec(buf)
        (num_ops,) = struct.unpack("<H", buf.read(2))
        ops: list[Op] = []
        for _ in range(num_ops):
            (kind_code,) = struct.unpack("<B", buf.read(1))
            op_name = _read_str(buf)
            input_qparams = _read_qparams(buf)
            if kind_code == _KIND_CODES["FULLY_CONNECTED"]:
                weight_qparams = _read_qparams(buf)
                output_qparams = _read_qparams(buf)
                weights = _read_array(buf)
                (has_bias,) = struct.unpack("<B", buf.read(1))
                bias = _read_array(buf) if has_bias else None
                ops.append(FullyConnectedOp(
                    weights, input_qparams, weight_qparams, output_qparams,
                    bias=bias, name=op_name,
                ))
            elif kind_code == _KIND_CODES["TANH"]:
                ops.append(TanhOp(input_qparams, name=op_name))
            elif kind_code == _KIND_CODES["ARGMAX"]:
                ops.append(ArgmaxOp(input_qparams, name=op_name))
            else:
                raise ValueError(f"unknown op kind code {kind_code}")
        return cls(name=name, input_spec=input_spec, ops=ops)

    def size_bytes(self) -> int:
        """Serialized size — what travels over USB at model-load time."""
        return len(self.to_bytes())

    def save(self, path) -> None:
        """Write the serialized model to ``path``."""
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path) -> "FlatModel":
        """Read a model written by :meth:`save`."""
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())

    def __repr__(self) -> str:
        return (
            f"FlatModel(name={self.name!r}, input={self.input_spec.shape}, "
            f"output={self.output_spec.shape}, "
            f"ops={[op.kind for op in self.ops]})"
        )
