"""Reference interpreter: executes a FlatModel on the CPU.

This is the ``tflite_runtime.Interpreter`` stand-in.  It defines the
golden integer semantics; the Edge TPU simulator must produce
bit-identical outputs (asserted in tests) while charging different time.
"""

from __future__ import annotations

import numpy as np

from repro.tflite.flatmodel import FlatModel
from repro.tflite.ops import fused_stages

__all__ = ["Interpreter"]


class Interpreter:
    """Executes a quantized flat model.

    The op chain is compiled once into fused execution stages
    (``FC→TANH`` / ``FC→requant→ARGMAX`` pairs collapse, skipping the
    intermediate int8 tensors); outputs are bit-identical to running
    ``op.run`` op by op, which the tests assert.

    Args:
        model: The flat model to execute.

    Example::

        interpreter = Interpreter(model)
        scores = interpreter.run(features)        # float in, float out
        raw = interpreter.run_quantized(q_input)  # int8 in, int8/int64 out
    """

    def __init__(self, model: FlatModel):
        self.model = model
        self._stages = fused_stages(model.ops)

    def run_quantized(self, x: np.ndarray) -> np.ndarray:
        """Run on already-quantized input.

        Args:
            x: int8 array of shape ``(batch, input_dim)`` or
                ``(input_dim,)``.

        Returns:
            The final op's raw output (int8 activations, or int64 indices
            for argmax models), with the batch dimension preserved.
        """
        x = np.asarray(x)
        if x.dtype != np.int8:
            raise TypeError(f"quantized input must be int8, got {x.dtype}")
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != self.model.input_spec.size:
            raise ValueError(
                f"expected input width {self.model.input_spec.size}, "
                f"got shape {x.shape}"
            )
        for stage in self._stages:
            x = stage(x)
        return x[0] if single else x

    def run(self, x: np.ndarray) -> np.ndarray:
        """Run on float input: quantize → execute → dequantize.

        For argmax models the int64 class indices are returned as a
        ``(batch,)`` vector; otherwise float32 activations of shape
        ``(batch, output_dim)``.
        """
        x = np.asarray(x, dtype=np.float32)
        single = x.ndim == 1
        quantized = self.model.input_spec.qparams.quantize(x)
        out = self.run_quantized(quantized)
        if self.model.output_is_index:
            out = out[..., 0] if not single else out[0]
            return out
        return self.model.output_spec.qparams.dequantize(out)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions regardless of whether the model has argmax."""
        out = self.run(x)
        if self.model.output_is_index:
            return np.asarray(out, dtype=np.int64)
        return np.argmax(out, axis=-1).astype(np.int64)

    def plan(self, max_batch: int, *, allow_native: bool = True):
        """Compile an arena-backed serving plan for this model.

        The returned :class:`~repro.runtime.plan.ModelPlan` executes the
        whole op chain through preallocated scratch buffers —
        ``plan.predict(x)`` is bit-identical to :meth:`predict` but
        allocation-free in steady state (and routed through the native
        AVX-512 VNNI kernels where provably exact).

        Args:
            max_batch: Largest batch to preallocate for; smaller batches
                pad up a power-of-two bucket ladder.
            allow_native: Permit the :mod:`repro.native` kernels.
        """
        from repro.runtime.plan import ModelPlan, bucket_ladder
        return ModelPlan.for_model(self.model, bucket_ladder(max_batch),
                                   allow_native=allow_native)
