"""Affine quantization parameters and calibration, TFLite-style.

TFLite's int8 scheme (which the Edge TPU requires):

- activations: per-tensor *asymmetric* affine quantization,
  ``real = scale * (q - zero_point)`` with ``q`` in [-128, 127];
- weights: per-tensor *symmetric* (``zero_point = 0``) int8;
- biases: int32 with ``scale = input_scale * weight_scale`` and
  ``zero_point = 0``.

Calibration observes activation min/max over a representative dataset,
exactly what ``tf.lite.TFLiteConverter`` does with a representative
dataset generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CalibrationObserver",
    "PerChannelQuantParams",
    "QuantParams",
    "qparams_asymmetric",
    "qparams_per_channel",
    "qparams_symmetric",
]

_DTYPE_RANGES = {
    "int8": (-128, 127),
    "int16": (-32768, 32767),
    "int32": (-(2**31), 2**31 - 1),
}


@dataclass(frozen=True)
class QuantParams:
    """Per-tensor affine quantization: ``real = scale * (q - zero_point)``.

    Attributes:
        scale: Positive real step size.
        zero_point: Integer mapped to real 0.0; must be representable in
            ``dtype``.
        dtype: Quantized storage type: ``int8``, ``int16`` or ``int32``.
    """

    scale: float
    zero_point: int
    dtype: str = "int8"

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPE_RANGES:
            raise ValueError(
                f"unsupported dtype {self.dtype!r}; choose from "
                f"{sorted(_DTYPE_RANGES)}"
            )
        if not self.scale > 0:
            raise ValueError(f"scale must be > 0, got {self.scale}")
        low, high = _DTYPE_RANGES[self.dtype]
        if not low <= self.zero_point <= high:
            raise ValueError(
                f"zero_point {self.zero_point} outside {self.dtype} range"
            )

    @property
    def qmin(self) -> int:
        """Smallest representable quantized value."""
        return _DTYPE_RANGES[self.dtype][0]

    @property
    def qmax(self) -> int:
        """Largest representable quantized value."""
        return _DTYPE_RANGES[self.dtype][1]

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy storage dtype."""
        return np.dtype(self.dtype)

    def quantize(self, real: np.ndarray) -> np.ndarray:
        """Quantize float values (round-to-nearest-even, then clamp)."""
        q = np.round(np.asarray(real, dtype=np.float64) / self.scale)
        q = q + self.zero_point
        return np.clip(q, self.qmin, self.qmax).astype(self.numpy_dtype)

    def quantize_into(self, real: np.ndarray, out: np.ndarray,
                      scratch: np.ndarray) -> np.ndarray:
        """Allocation-free :meth:`quantize` into preallocated buffers.

        Bit-identical to :meth:`quantize` (same float64 divide / round /
        clamp sequence), but every intermediate lives in ``scratch``
        and the result is written into ``out`` — the serving plan's
        arena path.

        Args:
            real: Float values, same shape as ``out``.
            out: Destination of dtype :attr:`numpy_dtype`.
            scratch: float64 working buffer of the same shape.
        """
        np.copyto(scratch, real, casting="unsafe")
        np.divide(scratch, self.scale, out=scratch)
        np.round(scratch, out=scratch)
        scratch += self.zero_point
        np.clip(scratch, self.qmin, self.qmax, out=scratch)
        np.copyto(out, scratch, casting="unsafe")
        return out

    def dequantize(self, quantized: np.ndarray) -> np.ndarray:
        """Recover float values from quantized storage."""
        return (
            (np.asarray(quantized, dtype=np.float64) - self.zero_point)
            * self.scale
        ).astype(np.float32)

    def range(self) -> tuple[float, float]:
        """The representable real-value interval ``[rmin, rmax]``."""
        return (
            self.scale * (self.qmin - self.zero_point),
            self.scale * (self.qmax - self.zero_point),
        )


def qparams_asymmetric(rmin: float, rmax: float,
                       dtype: str = "int8") -> QuantParams:
    """Activation qparams covering ``[rmin, rmax]``, nudged like TFLite.

    The real range is first extended to include zero (TFLite requires an
    exactly-representable real 0), then the zero point is rounded into
    the integer grid.

    Args:
        rmin: Smallest observed real value.
        rmax: Largest observed real value.
        dtype: Quantized storage type.
    """
    if not np.isfinite(rmin) or not np.isfinite(rmax):
        raise ValueError(f"range must be finite, got [{rmin}, {rmax}]")
    if rmin > rmax:
        raise ValueError(f"rmin {rmin} > rmax {rmax}")
    rmin = min(rmin, 0.0)
    rmax = max(rmax, 0.0)
    qmin, qmax = _DTYPE_RANGES[dtype]
    if rmax == rmin:
        # Degenerate all-zero tensor: any positive scale represents it.
        return QuantParams(scale=1.0, zero_point=0, dtype=dtype)
    # Guard against subnormal ranges underflowing the scale to zero.
    scale = max((rmax - rmin) / (qmax - qmin), np.finfo(np.float64).tiny)
    zero_point = int(round(qmin - rmin / scale))
    zero_point = int(np.clip(zero_point, qmin, qmax))
    return QuantParams(scale=scale, zero_point=zero_point, dtype=dtype)


def qparams_symmetric(max_abs: float, dtype: str = "int8") -> QuantParams:
    """Weight qparams: symmetric (zero_point 0) covering ``[-max_abs, max_abs]``."""
    if not np.isfinite(max_abs) or max_abs < 0:
        raise ValueError(f"max_abs must be finite and >= 0, got {max_abs}")
    qmin, qmax = _DTYPE_RANGES[dtype]
    if max_abs == 0.0:
        return QuantParams(scale=1.0, zero_point=0, dtype=dtype)
    # Use the positive side of the range so +max_abs maps to qmax, the
    # TFLite convention for symmetric int8 weights.
    return QuantParams(scale=max_abs / qmax, zero_point=0, dtype=dtype)


@dataclass(frozen=True)
class PerChannelQuantParams:
    """Per-output-channel symmetric weight quantization (TFLite style).

    Each output channel ``j`` has its own scale; zero points are all
    zero.  TFLite uses this for conv/fully-connected weights because a
    single tensor-wide scale wastes precision on channels with small
    dynamic range.

    Attributes:
        scales: Positive per-channel scales, shape ``(num_channels,)``.
        dtype: Quantized storage type (int8).
    """

    scales: tuple
    dtype: str = "int8"

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPE_RANGES:
            raise ValueError(f"unsupported dtype {self.dtype!r}")
        if not self.scales:
            raise ValueError("need at least one channel scale")
        if any(not scale > 0 for scale in self.scales):
            raise ValueError("all channel scales must be > 0")

    @property
    def num_channels(self) -> int:
        """Number of output channels."""
        return len(self.scales)

    @property
    def zero_point(self) -> int:
        """Per-channel weight quantization is always symmetric."""
        return 0

    @property
    def qmin(self) -> int:
        return _DTYPE_RANGES[self.dtype][0]

    @property
    def qmax(self) -> int:
        return _DTYPE_RANGES[self.dtype][1]

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    def scales_array(self) -> np.ndarray:
        """The scales as a float64 array."""
        return np.asarray(self.scales, dtype=np.float64)

    def quantize(self, weights: np.ndarray) -> np.ndarray:
        """Quantize a ``(input_dim, num_channels)`` weight matrix."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[1] != self.num_channels:
            raise ValueError(
                f"expected (input_dim, {self.num_channels}) weights, got "
                f"shape {weights.shape}"
            )
        q = np.round(weights / self.scales_array()[None, :])
        return np.clip(q, self.qmin, self.qmax).astype(self.numpy_dtype)

    def dequantize(self, quantized: np.ndarray) -> np.ndarray:
        """Recover float weights."""
        quantized = np.asarray(quantized, dtype=np.float64)
        return (quantized * self.scales_array()[None, :]).astype(np.float32)


def qparams_per_channel(weights: np.ndarray,
                        dtype: str = "int8") -> PerChannelQuantParams:
    """Per-channel symmetric qparams from a float weight matrix.

    Args:
        weights: Shape ``(input_dim, num_channels)``.
        dtype: Quantized storage type.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    qmax = _DTYPE_RANGES[dtype][1]
    max_abs = np.abs(weights).max(axis=0)
    # Channels that are entirely zero get scale 1.0 (any value represents
    # them exactly).
    scales = np.where(max_abs > 0, max_abs / qmax, 1.0)
    return PerChannelQuantParams(scales=tuple(float(s) for s in scales),
                                 dtype=dtype)


class CalibrationObserver:
    """Tracks the min/max of an activation tensor over calibration batches."""

    def __init__(self) -> None:
        self.rmin = np.inf
        self.rmax = -np.inf
        self.batches = 0

    def observe(self, values: np.ndarray) -> None:
        """Fold one batch of float activations into the running range."""
        values = np.asarray(values)
        if values.size == 0:
            return
        self.rmin = min(self.rmin, float(values.min()))
        self.rmax = max(self.rmax, float(values.max()))
        self.batches += 1

    def qparams(self, dtype: str = "int8") -> QuantParams:
        """Asymmetric qparams for the observed range.

        Raises:
            RuntimeError: If no batches were observed.
        """
        if self.batches == 0:
            raise RuntimeError("observer saw no calibration data")
        return qparams_asymmetric(self.rmin, self.rmax, dtype=dtype)
