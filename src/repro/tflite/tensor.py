"""Tensor metadata for the flat model container."""

from __future__ import annotations

from dataclasses import dataclass

from repro.tflite.quantization import QuantParams

__all__ = ["TensorSpec"]


@dataclass(frozen=True)
class TensorSpec:
    """Shape/dtype/quantization metadata for a model input or output.

    Attributes:
        name: Tensor name (e.g. ``"input"``, ``"scores"``).
        shape: Per-sample shape, excluding the batch dimension — a model
            taking ``n`` features has ``shape=(n,)``.
        qparams: Quantization parameters; ``None`` marks a non-quantized
            tensor such as an argmax index output.
    """

    name: str
    shape: tuple[int, ...]
    qparams: QuantParams | None = None

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("shape must have at least one dimension")
        if any(dim < 1 for dim in self.shape):
            raise ValueError(f"shape dimensions must be >= 1, got {self.shape}")

    @property
    def size(self) -> int:
        """Elements per sample."""
        out = 1
        for dim in self.shape:
            out *= dim
        return out

    @property
    def bytes_per_sample(self) -> int:
        """Storage bytes per sample (int8 for quantized, int64 indices else)."""
        if self.qparams is None:
            return self.size * 8
        return self.size * self.qparams.numpy_dtype.itemsize
