"""Post-training int8 quantization: float Network → FlatModel.

Mirrors ``tf.lite.TFLiteConverter`` with full-integer quantization and a
representative dataset: run calibration batches through the float graph,
record every activation tensor's range, then emit quantized ops whose
input/output qparams come from calibration (except tanh outputs, which
TFLite pins to scale 1/128).
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Network
from repro.nn.layers import Activation, Argmax, Dense
from repro.tflite.flatmodel import FlatModel
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, Op, TanhOp
from repro.tflite.quantization import CalibrationObserver
from repro.tflite.tensor import TensorSpec

__all__ = ["convert"]

_DEFAULT_CALIBRATION_BATCH = 128


def convert(network: Network, representative_data: np.ndarray,
            name: str | None = None,
            calibration_batch: int = _DEFAULT_CALIBRATION_BATCH,
            per_channel: bool = False) -> FlatModel:
    """Quantize a float network to an int8 flat model.

    Args:
        network: The float network (from :mod:`repro.nn.builder`).
        representative_data: Float samples, shape
            ``(num_samples, input_dim)``, spanning the input distribution
            (typically a slice of the training set).  Activation ranges —
            and therefore quantization quality — come from this data.
        name: Model name; defaults to the network's name.
        calibration_batch: Calibration mini-batch size (memory control
            for hyper-wide hidden layers).
        per_channel: Quantize dense weights with per-output-channel
            scales (TFLite's higher-precision default for weights)
            instead of one per-tensor scale.

    Returns:
        The quantized :class:`FlatModel`.

    Raises:
        ValueError: For empty calibration data or unsupported layers.
        TypeError: If the network contains layer types without a
            quantized kernel.
    """
    representative_data = np.asarray(representative_data, dtype=np.float32)
    if representative_data.ndim != 2 or len(representative_data) == 0:
        raise ValueError(
            "representative_data must be a non-empty (samples, features) array"
        )
    if representative_data.shape[1] != network.input_dim:
        raise ValueError(
            f"representative data has {representative_data.shape[1]} features "
            f"but the network expects {network.input_dim}"
        )
    for layer in network.layers:
        if isinstance(layer, Activation) and layer.kind not in ("tanh",):
            raise ValueError(
                f"no quantized kernel for activation {layer.kind!r}"
            )
        if not isinstance(layer, (Dense, Activation, Argmax)):
            raise TypeError(
                f"no quantized kernel for layer type {type(layer).__name__}"
            )

    observers = _calibrate(network, representative_data, calibration_batch)

    input_qparams = observers[0].qparams()
    input_spec = TensorSpec(
        name="input", shape=(network.input_dim,), qparams=input_qparams
    )
    ops: list[Op] = []
    current_qparams = input_qparams
    for index, layer in enumerate(network.layers):
        if isinstance(layer, Dense):
            output_qparams = _output_qparams_for(network, index, observers)
            op = FullyConnectedOp.from_float(
                layer.weights, current_qparams, output_qparams,
                bias=layer.bias, per_channel=per_channel, name=layer.name,
            )
        elif isinstance(layer, Activation):
            op = TanhOp(current_qparams, name=layer.name)
        else:  # Argmax — guaranteed by the pre-check above
            op = ArgmaxOp(current_qparams, name=layer.name)
        ops.append(op)
        current_qparams = op.output_qparams
    return FlatModel(
        name=name if name is not None else network.name,
        input_spec=input_spec,
        ops=ops,
    )


def _calibrate(network: Network, data: np.ndarray,
               batch_size: int) -> list[CalibrationObserver]:
    """Observe min/max for the input and every layer output."""
    observers = [CalibrationObserver() for _ in range(len(network.layers) + 1)]
    for start in range(0, len(data), batch_size):
        x = data[start:start + batch_size]
        observers[0].observe(x)
        for index, layer in enumerate(network.layers):
            x = layer.apply(x)
            observers[index + 1].observe(x)
    return observers


def _output_qparams_for(network: Network, layer_index: int,
                        observers: list[CalibrationObserver]):
    """Output qparams for the dense layer at ``layer_index``.

    If the next layer is a tanh, the dense output feeds the LUT input and
    takes its calibrated range; plain calibrated range otherwise.  (The
    *tanh's* output is pinned by :class:`TanhOp` itself.)
    """
    return observers[layer_index + 1].qparams()
