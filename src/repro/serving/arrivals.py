"""Timestamped request generation for the online serving simulation.

An online service sees requests *over time*, not as a materialized test
set.  :class:`ArrivalProcess` generates seeded arrival times — Poisson
for steady load, a two-state Markov-modulated Poisson for bursty edge
traffic — and :class:`RequestStream` attaches payloads drawn from a
:class:`~repro.data.streams.DriftingStream`, advancing the drift at
per-request granularity so the served distribution moves under the
server exactly as the paper's continual-learning motivation describes.

Everything is seeded and pre-generated: a trace is a plain list of
:class:`Request` objects, so two servers (say, deadline-aware vs.
fixed-size batching) can be compared on the *identical* workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.streams import DriftingStream

__all__ = ["ArrivalProcess", "Request", "RequestStream"]

_KINDS = ("poisson", "bursty")


@dataclass(frozen=True, slots=True)
class Request:
    """One timestamped inference request.

    ``slots=True`` matters at trace scale: a 10⁶-request run streams a
    million of these through the server, and the per-instance
    ``__dict__`` was the largest constant factor after the feature
    vector itself.

    Attributes:
        request_id: Position in the trace (responses must come back in
            this order).  In a cluster run this is the *replica-local*
            index — the router renumbers requests per replica.
        arrival_s: Virtual arrival time.
        deadline_s: Absolute virtual time by which the response should
            land (arrival plus the per-request latency budget).
        features: Float feature vector ``(num_features,)``.
        label: Ground-truth class for accuracy accounting (the
            prequential serving setting), ``None`` if unknown.
        tenant: Index of the emitting tenant in a multi-tenant cluster
            trace (``None`` for single-tenant traces).
    """

    request_id: int
    arrival_s: float
    deadline_s: float
    features: np.ndarray
    label: int | None = None
    tenant: int | None = None

    @property
    def budget_s(self) -> float:
        """Latency budget granted to this request."""
        return self.deadline_s - self.arrival_s


class ArrivalProcess:
    """Seeded arrival-time generator.

    Two kinds:

    - ``"poisson"``: i.i.d. exponential inter-arrivals at ``rate_hz``.
    - ``"bursty"``: a two-state Markov-modulated Poisson process.  The
      process alternates between a *calm* state at ``rate_hz`` and a
      *burst* state at ``rate_hz * burst_factor``; state lengths (in
      requests) are geometric with means ``calm_length`` and
      ``burst_length``.  Bursts model sensor event showers on top of
      the base rate, so the average rate exceeds ``rate_hz``.

    Args:
        rate_hz: Base arrival rate (requests per virtual second).
        kind: ``"poisson"`` or ``"bursty"``.
        seed: Seed for the inter-arrival draws.
        burst_factor: Rate multiplier inside a burst.
        burst_length: Mean burst length in requests.
        calm_length: Mean calm-state length in requests.
    """

    def __init__(self, rate_hz: float, kind: str = "poisson",
                 seed: int | None = None, burst_factor: float = 8.0,
                 burst_length: int = 16, calm_length: int = 48):
        if rate_hz <= 0:
            raise ValueError(f"rate_hz must be > 0, got {rate_hz}")
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if burst_factor < 1:
            raise ValueError(
                f"burst_factor must be >= 1, got {burst_factor}"
            )
        if burst_length < 1 or calm_length < 1:
            raise ValueError("burst_length and calm_length must be >= 1")
        self.rate_hz = rate_hz
        self.kind = kind
        self.burst_factor = burst_factor
        self.burst_length = burst_length
        self.calm_length = calm_length
        self._rng = np.random.default_rng(seed)

    def inter_arrivals(self, num_requests: int) -> np.ndarray:
        """Draw ``num_requests`` inter-arrival gaps (seconds)."""
        if num_requests < 1:
            raise ValueError(
                f"num_requests must be >= 1, got {num_requests}"
            )
        rng = self._rng
        if self.kind == "poisson":
            return rng.exponential(1.0 / self.rate_hz, num_requests)
        gaps = np.empty(num_requests)
        produced = 0
        bursting = False
        while produced < num_requests:
            mean_len = self.burst_length if bursting else self.calm_length
            length = min(int(rng.geometric(1.0 / mean_len)),
                         num_requests - produced)
            rate = self.rate_hz * (self.burst_factor if bursting else 1.0)
            gaps[produced:produced + length] = rng.exponential(
                1.0 / rate, length
            )
            produced += length
            bursting = not bursting
        return gaps

    def times(self, num_requests: int) -> np.ndarray:
        """Strictly increasing arrival times for ``num_requests``."""
        return np.cumsum(self.inter_arrivals(num_requests))


class RequestStream:
    """Binds an arrival process to a drifting payload distribution.

    Args:
        stream: Payload source; each request draws one sample from the
            then-current distribution
            (:meth:`~repro.data.streams.DriftingStream.draw`), and the
            drift advances one step after every ``drift_every``-request
            block — the first block always samples the stream's initial
            distribution.
        arrivals: Arrival-time generator.
        deadline_s: Per-request latency budget (deadline = arrival +
            budget).
        drift_every: Requests per drift step; ``0`` freezes the
            distribution (a stationary serving workload).
    """

    def __init__(self, stream: DriftingStream, arrivals: ArrivalProcess,
                 deadline_s: float, drift_every: int = 1):
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        if drift_every < 0:
            raise ValueError(
                f"drift_every must be >= 0, got {drift_every}"
            )
        self.stream = stream
        self.arrivals = arrivals
        self.deadline_s = deadline_s
        self.drift_every = drift_every

    def generate(self, num_requests: int) -> Iterator[Request]:
        """Stream ``num_requests`` timestamped requests, one at a time.

        A true generator: requests are produced lazily as the consumer
        pulls them, so a 10⁶-request trace never exists in memory — the
        server admits each request as it "arrives" and drops the
        reference once it is served.  Draw order and values are
        unchanged from the list-returning version, so
        ``list(stream.generate(n))`` reproduces the old traces exactly.
        """
        if num_requests < 1:
            raise ValueError(
                f"num_requests must be >= 1, got {num_requests}"
            )
        return self._generate(num_requests)

    def _generate(self, num_requests: int) -> Iterator[Request]:
        times = self.arrivals.times(num_requests)
        for index in range(num_requests):
            # Drift advances *after* each block of ``drift_every``
            # requests: request 0 always samples the stream's initial
            # distribution, so a drifting trace and a stationary one
            # agree on sample 0 (advancing before the first draw used
            # to fire at index 0 and skip the initial distribution).
            x, y = self.stream.draw(1)
            if self.drift_every and (index + 1) % self.drift_every == 0:
                self.stream.advance(1)
            arrival = float(times[index])
            yield Request(
                request_id=index,
                arrival_s=arrival,
                deadline_s=arrival + self.deadline_s,
                features=x[0],
                label=int(y[0]),
            )
