"""Hot model swap: deploying a freshly retrained model mid-stream.

The paper's recurring-learning story is that the host keeps training
while the Edge TPU serves (the modelgen cost of Fig. 5 is *recurring*,
not one-time).  :class:`ModelSwapper` models the serving side of that
loop: a retrained model (e.g. the fused output of
:class:`~repro.runtime.pipeline.TrainingPipeline` or the refreshed
class hypervectors of a
:class:`~repro.runtime.continual.ContinualLearner`) is *scheduled* at
the virtual time retraining finished, becomes *ready* after the
modelgen cost (TFLite generation + Edge TPU compilation) has elapsed,
and is *committed* atomically at the next batch boundary — the old
model serves every batch dispatched before the commit, so there is
never a gap or a half-swapped pool.

Commit reloads every healthy device (charging the model-load transfer
the paper's Fig. 5 accounts) through
:meth:`~repro.edgetpu.multidevice.DevicePool.load_replicated`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edgetpu.compiler import CompiledModel
from repro.edgetpu.multidevice import DevicePool
from repro.runtime.costs import CostModel

__all__ = ["ModelSwapper", "PendingSwap", "SwapRecord"]


@dataclass(frozen=True)
class PendingSwap:
    """A scheduled swap waiting for its modelgen cost to elapse.

    Attributes:
        compiled: The replacement model.
        scheduled_s: Virtual time the swap was requested.
        ready_s: Virtual time the artifact is ready to commit
            (``scheduled_s`` plus the modelgen cost).
    """

    compiled: CompiledModel
    scheduled_s: float
    ready_s: float


@dataclass(frozen=True)
class SwapRecord:
    """One committed swap, for the serving report.

    Attributes:
        scheduled_s: When the swap was requested.
        committed_s: Batch-boundary time the pool switched models.
        modelgen_seconds: Host-side generation cost charged.
        load_seconds: Device model-load cost charged at commit.
    """

    scheduled_s: float
    committed_s: float
    modelgen_seconds: float
    load_seconds: float


class ModelSwapper:
    """Schedules and atomically commits hot model swaps on a pool.

    Args:
        pool: The serving :class:`DevicePool` (replicated placement).
        costs: Cost model charging modelgen; defaults to the standard
            host/TPU pairing.
    """

    def __init__(self, pool: DevicePool, costs: CostModel | None = None):
        self.pool = pool
        self.costs = costs if costs is not None else CostModel()
        self._pending: list[PendingSwap] = []
        self.records: list[SwapRecord] = []

    # ------------------------------------------------------------------

    def modelgen_seconds(self, compiled: CompiledModel) -> float:
        """Host-side generation cost of one swap artifact.

        ``CostModel.modelgen_seconds`` bundles the device load, which
        the swapper charges separately at commit time (per the actual
        pool), so the load estimate is subtracted here — clamped at
        zero exactly as :class:`~repro.runtime.pipeline.TrainingPipeline`
        does for tiny models.
        """
        return max(
            0.0,
            self.costs.modelgen_seconds(compiled.weight_bytes)
            - self.costs.tpu.model_load_seconds(compiled.weight_bytes),
        )

    def schedule(self, compiled: CompiledModel, at_s: float) -> float:
        """Request a swap at virtual time ``at_s``; returns ready time."""
        if at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {at_s}")
        ready = at_s + self.modelgen_seconds(compiled)
        self._pending.append(PendingSwap(
            compiled=compiled, scheduled_s=at_s, ready_s=ready,
        ))
        self._pending.sort(key=lambda p: p.ready_s)
        return ready

    @property
    def pending(self) -> int:
        """Swaps scheduled but not yet committed."""
        return len(self._pending)

    def poll(self, now: float) -> CompiledModel | None:
        """Commit the newest due swap, if any; returns the new model.

        Called by the server at batch boundaries.  All due swaps
        collapse into one commit of the *latest-scheduled* one (the
        most recent retrain; a stale intermediate model never reaches
        the devices) and the pool load cost is charged once.  "Latest"
        is by ``scheduled_s``, not ``ready_s``: a small retrain can
        finish modelgen before an older, bigger one, and the older
        artifact must not win just because it became ready last.
        Pending swaps scheduled before the committed one are discarded
        — committing them later would roll the pool back to an older
        model.  Returns ``None`` when nothing is due.
        """
        due = [p for p in self._pending if p.ready_s <= now]
        if not due:
            return None
        newest = max(due, key=lambda p: (p.scheduled_s, p.ready_s))
        self._pending = [
            p for p in self._pending
            if p.ready_s > now and p.scheduled_s > newest.scheduled_s
        ]
        load_seconds = self.pool.load_replicated(newest.compiled)
        self.records.append(SwapRecord(
            scheduled_s=newest.scheduled_s,
            committed_s=now,
            modelgen_seconds=newest.ready_s - newest.scheduled_s,
            load_seconds=load_seconds,
        ))
        return newest.compiled

    # ------------------------------------------------------------------

    @property
    def swaps_committed(self) -> int:
        """Number of commits so far."""
        return len(self.records)

    @property
    def total_swap_seconds(self) -> float:
        """Total modelgen + load cost charged across commits."""
        return sum(r.modelgen_seconds + r.load_seconds
                   for r in self.records)
