"""Batch-closing policies for the online inference server.

Batching amortizes the Edge TPU's fixed per-invocation dispatch
overhead (the term that dominates small models in the paper's Fig. 6),
but every queued request is aging against its deadline.  The policies
here decide *when a waiting queue must dispatch*:

- :class:`DynamicBatcher` — size-or-deadline: close the batch at
  ``max_batch``, or at the last moment the *oldest* request's deadline
  budget still covers the estimated service time.  This is the policy
  that meets a p99 SLA at loads where pure size-triggered batching
  cannot.
- :class:`FixedSizeBatcher` — size-or-timeout: the classic fixed-size
  baseline.  Without a timeout it waits indefinitely for a full batch
  (the server still flushes once the trace ends).

Both are pure policies over (queue, now, service estimate): they answer
"when is this queue ready?" and never mutate anything, so the server's
event loop stays the single owner of simulation state.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.serving.arrivals import Request

__all__ = ["DynamicBatcher", "FixedSizeBatcher"]

ServiceEstimate = Callable[[int], float]


class DynamicBatcher:
    """Deadline-aware size-or-deadline batch closing.

    Args:
        max_batch: Close immediately once this many requests queue.
        slack_s: Safety margin subtracted from the deadline trigger
            (covers estimate error and host-tail jitter).
    """

    def __init__(self, max_batch: int = 32, slack_s: float = 0.0):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if slack_s < 0:
            raise ValueError(f"slack_s must be >= 0, got {slack_s}")
        self.max_batch = max_batch
        self.slack_s = slack_s

    def ready_at(self, queue: Sequence[Request], now: float,
                 service_estimate: ServiceEstimate) -> float:
        """Earliest virtual time the queue must dispatch.

        ``now`` when the queue already holds ``max_batch`` requests;
        otherwise the latest start that still lands the oldest request
        inside its deadline given the estimated service time of the
        current batch — further arrivals can only move dispatch earlier
        (the server re-evaluates after every arrival).

        Returns ``inf`` for an empty queue (nothing to dispatch).

        ``ready_at`` runs once per arrival event, so ``service_estimate``
        should be cheap to re-call with a repeated batch size —
        :meth:`InferenceServer.service_estimate` memoizes per batch size
        for exactly this loop.
        """
        if not queue:
            return math.inf
        if len(queue) >= self.max_batch:
            return now
        forced = (queue[0].deadline_s - self.slack_s
                  - service_estimate(len(queue)))
        return max(now, forced)


class FixedSizeBatcher:
    """Size-or-timeout batch closing (the non-deadline-aware baseline).

    Args:
        max_batch: Close once this many requests queue.
        timeout_s: Close ``timeout_s`` after the oldest request arrived
            even if the batch is short; ``inf`` (default) waits for a
            full batch.
    """

    def __init__(self, max_batch: int = 32, timeout_s: float = math.inf):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.max_batch = max_batch
        self.timeout_s = timeout_s

    def ready_at(self, queue: Sequence[Request], now: float,
                 service_estimate: ServiceEstimate) -> float:
        """Dispatch when full, or when the oldest request times out."""
        if not queue:
            return math.inf
        if len(queue) >= self.max_batch:
            return now
        if math.isinf(self.timeout_s):
            return math.inf
        return max(now, queue[0].arrival_s + self.timeout_s)
