"""The pre-engine serving loop, frozen verbatim as an equivalence oracle.

This is the ``InferenceServer.serve`` event loop exactly as it shipped
before the discrete-event refactor (PR 8): materialized arrival list,
alternate next-arrival vs. batch-ready, always take the earlier event
with arrivals winning ties.  It exists only so tests can assert that
single-server serving on the :class:`~repro.cluster.engine.EventEngine`
reproduces this loop's :class:`~repro.serving.server.ServeReport`
byte-for-byte — the same role the frozen ``run_reference`` kernels play
for the int8 fast path.

Do not "improve" this file: its value is that it does not change.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.runtime.profiler import LatencyTracker
from repro.serving.arrivals import Request

__all__ = ["serve_reference"]


def serve_reference(server, requests: list[Request]):
    """Run ``server`` over ``requests`` with the pre-refactor loop.

    Mutates ``server`` exactly as ``InferenceServer.serve`` does (hot
    swaps commit, failures trip, caches fill), so comparisons must
    build a fresh server per run.
    """
    from repro.serving.server import ServeReport

    num_requests = len(requests)
    report = ServeReport(num_requests=num_requests)
    report.predictions = np.full(num_requests, -1, dtype=np.int64)
    report.latencies = np.full(num_requests, np.nan)
    if num_requests and requests[0].label is not None:
        report.labels = np.array(
            [r.label for r in requests], dtype=np.int64
        )
    for left, right in zip(requests, requests[1:]):
        if right.arrival_s < left.arrival_s:
            raise ValueError("requests must be in arrival order")

    tracer = server.tracer
    metrics = server.metrics
    root = (tracer.add("serve", 0.0, 0.0, requests=num_requests,
                       devices=server.pool.num_devices)
            if tracer is not None else None)
    server._active_tier = 0
    if server._tiers is not None:
        report.tier_names = [t.name for t in server._tiers]
        report.tier_batches = [0] * len(server._tiers)
        report.tier_served = [0] * len(server._tiers)
        report.tier_build_accuracy = [t.build_accuracy
                                      for t in server._tiers]
        report.request_tiers = np.full(num_requests, -1,
                                       dtype=np.int64)
        report.tier_latency = [LatencyTracker()
                               for _ in server._tiers]
        if metrics is not None:
            metrics.gauge("serve.tier_active").set(0)
    queue: deque[Request] = deque()
    device_free = [0.0] * server.pool.num_devices
    device_busy = [0.0] * server.pool.num_devices
    device_swap = [0.0] * server.pool.num_devices
    host_free = 0.0
    now = 0.0
    index = 0

    while index < num_requests or queue:
        next_arrival = (requests[index].arrival_s
                        if index < num_requests else math.inf)
        ready = server.batcher.ready_at(queue, now,
                                        server.service_estimate)
        if math.isinf(ready) and index >= num_requests and queue:
            # Trace over, policy would wait forever: flush.
            ready = now
        if next_arrival <= ready:
            now = max(now, next_arrival)
            request = requests[index]
            if metrics is not None:
                metrics.counter("serve.requests").inc()
            if len(queue) >= server.max_queue:
                report.dropped += 1
                if tracer is not None:
                    # Zero-duration marker: the request arrived and
                    # was rejected at the same virtual instant.
                    tracer.add("request", request.arrival_s,
                               request.arrival_s, parent_id=root,
                               tags=("dropped",),
                               request_id=request.request_id)
                if metrics is not None:
                    metrics.counter("serve.dropped").inc()
            else:
                queue.append(request)
            if metrics is not None:
                metrics.gauge("serve.queue_depth").set(len(queue))
            index += 1
            continue
        now = max(now, ready)
        batch = [queue.popleft()
                 for _ in range(min(server.batcher.max_batch,
                                    len(queue)))]
        if metrics is not None:
            metrics.gauge("serve.queue_depth").set(len(queue))
        host_free = server._dispatch_batch(
            batch, now, device_free, device_busy, device_swap,
            host_free, report, tracer, root,
            queue_depth=len(queue),
        )

    report.served = num_requests - report.dropped
    if report.served:
        report.makespan_s = float(
            np.nanmax(report.latencies
                      + np.array([r.arrival_s for r in requests]))
        )
    else:
        # Every request dropped (e.g. ``max_queue=0``) or an empty
        # trace: the latency vector is all-NaN, so nanmax would
        # warn and return NaN — the makespan is just the virtual
        # clock at the last event.
        report.makespan_s = float(now)
    report.device_busy_seconds = [float(b) for b in device_busy]
    report.device_swap_seconds = [float(s) for s in device_swap]
    report.device_idle_seconds = [
        max(0.0, report.makespan_s - b - s)
        for b, s in zip(device_busy, device_swap)
    ]
    report.device_energy_j = [
        device.energy_joules() for device in server.pool.devices
    ]
    report.failed_devices = sorted(server.pool.failed)
    if server.swapper is not None:
        report.swap_records = list(server.swapper.records)
    if tracer is not None:
        tracer.finish(root, report.makespan_s)
        tracer.advance(report.makespan_s)
        report.trace = tracer if tracer.enabled else None
    if metrics is not None:
        metrics.counter("serve.batches").inc(report.num_batches)
        metrics.counter("serve.retries").inc(report.retried_batches)
        metrics.counter("serve.fallbacks").inc(report.fallback_batches)
        metrics.counter("serve.deadline_misses").inc(
            report.deadline_misses
        )
    if server.profiler is not None:
        server.profiler.charge("inference", report.makespan_s)
    return report
