"""The online inference server: event loop, admission, faults, swaps.

:class:`InferenceServer` simulates serving a timestamped request trace
on the repo's virtual-clock convention.  Each component mirrors a piece
of a production serving stack:

- **Admission control** — a bounded request queue; arrivals past the
  bound are dropped and accounted (the graceful-degradation alternative
  to unbounded latency collapse).
- **Batching** — a pluggable policy (:mod:`repro.serving.batcher`)
  decides when the queue closes into a micro-batch; the batch then runs
  on the earliest-free device of a replicated
  :class:`~repro.edgetpu.multidevice.DevicePool` with the host
  dequantize/argmax tail serialized behind it, exactly the timing model
  of :class:`~repro.runtime.executor.MicroBatchDispatcher`.
- **Fault tolerance** — device failures injected via
  :class:`~repro.edgetpu.multidevice.FailurePlan` are detected at
  dispatch (paying the modeled detection cost), retried once on the
  next healthy device, and finally served by the existing CPU-fallback
  op path — the same int8 kernels run on the host, so predictions stay
  bit-identical and in request order, only slower.
- **Hot swap** — a :class:`~repro.serving.swap.ModelSwapper` commits a
  freshly retrained model atomically between batches.

Latency is tracked per request on the virtual clock
(:class:`~repro.runtime.profiler.LatencyTracker` percentiles), so p99
against an SLA is a first-class, machine-independent output.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.edgetpu.compiler import CompiledModel
from repro.edgetpu.multidevice import DeviceFailedError, DevicePool
from repro.platforms.base import Platform
from repro.runtime.executor import cpu_op_seconds, run_host_tail
from repro.runtime.profiler import LatencyTracker
from repro.serving.arrivals import Request
from repro.serving.batcher import DynamicBatcher
from repro.serving.swap import ModelSwapper, SwapRecord

__all__ = ["InferenceServer", "ServeReport"]


@dataclass
class ServeReport:
    """Everything one :meth:`InferenceServer.serve` run produced.

    Attributes:
        num_requests: Requests in the trace.
        served: Requests that received a prediction.
        dropped: Requests rejected by admission control (bounded queue).
        deadline_misses: Served requests whose completion passed their
            deadline.
        predictions: int64 class indices in *request order*; ``-1``
            marks a dropped request.
        labels: Ground-truth labels in request order (``None`` when the
            trace carried no labels).
        latencies: Per-request completion-minus-arrival seconds in
            request order (``nan`` for dropped requests).
        latency: Percentile tracker over served requests.
        makespan_s: Virtual time of the last completion.
        num_batches: Batches dispatched.
        batch_sizes: Size of each dispatched batch, in dispatch order.
        device_busy_seconds: Per-device busy seconds.
        device_idle_seconds: Per-device ``makespan - busy`` seconds.
        host_seconds: Host busy seconds (tails + CPU fallback).
        retried_batches: Batches that succeeded on a retry device after
            a failure was detected.
        fallback_batches: Batches served entirely on the host CPU.
        failed_devices: Pool indices that failed during the run.
        swap_records: Committed hot swaps.
    """

    num_requests: int
    served: int = 0
    dropped: int = 0
    deadline_misses: int = 0
    predictions: np.ndarray = field(default_factory=lambda: np.empty(0))
    labels: np.ndarray | None = None
    latencies: np.ndarray = field(default_factory=lambda: np.empty(0))
    latency: LatencyTracker = field(default_factory=LatencyTracker)
    makespan_s: float = 0.0
    num_batches: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    device_busy_seconds: list[float] = field(default_factory=list)
    device_idle_seconds: list[float] = field(default_factory=list)
    host_seconds: float = 0.0
    retried_batches: int = 0
    fallback_batches: int = 0
    failed_devices: list[int] = field(default_factory=list)
    swap_records: list[SwapRecord] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Served requests per virtual second."""
        if self.makespan_s <= 0:
            return 0.0
        return self.served / self.makespan_s

    @property
    def drop_rate(self) -> float:
        """Fraction of the trace rejected by admission control."""
        if self.num_requests == 0:
            return 0.0
        return self.dropped / self.num_requests

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of *served* requests that finished past deadline."""
        if self.served == 0:
            return 0.0
        return self.deadline_misses / self.served

    @property
    def utilization(self) -> float:
        """Fraction of pooled device time spent busy."""
        busy = sum(self.device_busy_seconds)
        total = busy + sum(self.device_idle_seconds)
        return busy / total if total > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average dispatched batch size."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    @property
    def accuracy(self) -> float | None:
        """Mean accuracy over served requests (``None`` without labels)."""
        if self.labels is None or self.served == 0:
            return None
        mask = self.predictions >= 0
        return float(np.mean(self.predictions[mask] == self.labels[mask]))

    def windowed_accuracy(self, num_windows: int) -> list[float]:
        """Accuracy over ``num_windows`` equal request-index windows.

        Dropped requests are excluded inside each window; an all-dropped
        window reports ``nan``.  This is the curve that shows a static
        server decaying under drift and a swapping server recovering.
        """
        if num_windows < 1:
            raise ValueError(
                f"num_windows must be >= 1, got {num_windows}"
            )
        if self.labels is None:
            raise ValueError("trace carried no labels")
        edges = np.linspace(0, self.num_requests, num_windows + 1,
                            dtype=int)
        accuracies = []
        for start, stop in zip(edges[:-1], edges[1:]):
            preds = self.predictions[start:stop]
            labels = self.labels[start:stop]
            mask = preds >= 0
            if not mask.any():
                accuracies.append(float("nan"))
            else:
                accuracies.append(
                    float(np.mean(preds[mask] == labels[mask]))
                )
        return accuracies

    def summary(self) -> dict:
        """Machine-readable report (the serving benchmark's JSON rows)."""
        payload = {
            "num_requests": self.num_requests,
            "served": self.served,
            "dropped": self.dropped,
            "drop_rate": self.drop_rate,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "throughput_rps": self.throughput,
            "makespan_s": self.makespan_s,
            "num_batches": self.num_batches,
            "mean_batch_size": self.mean_batch_size,
            "utilization": self.utilization,
            "host_seconds": self.host_seconds,
            "retried_batches": self.retried_batches,
            "fallback_batches": self.fallback_batches,
            "failed_devices": list(self.failed_devices),
            "swaps_committed": len(self.swap_records),
            "swap_seconds": sum(r.modelgen_seconds + r.load_seconds
                                for r in self.swap_records),
            "latency": self.latency.summary(),
        }
        if self.labels is not None:
            payload["accuracy"] = self.accuracy
        return payload


class InferenceServer:
    """Event-loop server over a replicated device pool.

    Args:
        pool: A :class:`DevicePool` loaded via
            :meth:`~repro.edgetpu.multidevice.DevicePool.load_replicated`.
        batcher: Batch-closing policy; defaults to a
            :class:`~repro.serving.batcher.DynamicBatcher` of 32.
        host: Host platform charged for tails and CPU fallback;
            defaults to :class:`~repro.platforms.cpu.MobileCpu`.
        max_queue: Admission bound — arrivals beyond this queue depth
            are dropped.
        swapper: Optional :class:`~repro.serving.swap.ModelSwapper`
            whose scheduled swaps commit at batch boundaries.
        profiler: Optional :class:`~repro.runtime.profiler.PhaseProfiler`;
            the serve makespan is charged under ``inference``.
    """

    def __init__(self, pool: DevicePool, batcher=None,
                 host: Platform | None = None, max_queue: int = 256,
                 swapper: ModelSwapper | None = None, profiler=None):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if host is None:
            from repro.platforms.cpu import MobileCpu
            host = MobileCpu()
        loaded = [m for m in pool.models if m is not None]
        if not loaded:
            raise RuntimeError("no models loaded; load the pool first")
        for other in loaded[1:]:
            if other is not loaded[0]:
                raise ValueError(
                    "serving requires the replicated placement; use "
                    "DevicePool.load_replicated()"
                )
        if swapper is not None and swapper.pool is not pool:
            raise ValueError("swapper is bound to a different pool")
        self.pool = pool
        self.batcher = batcher if batcher is not None else DynamicBatcher()
        self.host = host
        self.max_queue = max_queue
        self.swapper = swapper
        self.profiler = profiler
        self._compiled: CompiledModel = loaded[0]
        # Per-batch-size service estimates are pure in (compiled model,
        # batch); the event loop re-evaluates the batch trigger after
        # every arrival, so memoize instead of re-deriving the latency
        # plan each time.  Invalidated on hot swap.
        self._estimate_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Cost estimation (drives the deadline-aware batch trigger)
    # ------------------------------------------------------------------

    def _host_tail_seconds(self, compiled: CompiledModel,
                           rows: int) -> float:
        width = compiled.plans[-1].output_dim
        seconds = 0.0
        for op in compiled.cpu_ops:
            seconds += cpu_op_seconds(self.host, op, rows, width)
            width = op.output_dim(width)
        if not compiled.model.output_is_index:
            seconds += self.host.argmax_seconds(rows, width)
        return seconds

    def service_estimate(self, batch_size: int) -> float:
        """Modeled device invoke + host tail for one batch (memoized)."""
        if batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        estimate = self._estimate_cache.get(batch_size)
        if estimate is None:
            compiled = self._compiled
            estimate = (compiled.invoke_seconds(batch_size)
                        + self._host_tail_seconds(compiled, batch_size))
            self._estimate_cache[batch_size] = estimate
        return estimate

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def serve(self, requests: list[Request]) -> ServeReport:
        """Run the trace to completion; returns the serving report.

        Requests must be in arrival order (as
        :meth:`~repro.serving.arrivals.RequestStream.generate` emits
        them).  The loop alternates two events — admit the next arrival,
        or close and dispatch a batch — always taking the earlier one,
        so batching decisions see exactly the arrivals a real server
        would have seen by that time.
        """
        num_requests = len(requests)
        report = ServeReport(num_requests=num_requests)
        report.predictions = np.full(num_requests, -1, dtype=np.int64)
        report.latencies = np.full(num_requests, np.nan)
        if num_requests and requests[0].label is not None:
            report.labels = np.array(
                [r.label for r in requests], dtype=np.int64
            )
        for left, right in zip(requests, requests[1:]):
            if right.arrival_s < left.arrival_s:
                raise ValueError("requests must be in arrival order")

        queue: deque[Request] = deque()
        device_free = [0.0] * self.pool.num_devices
        device_busy = [0.0] * self.pool.num_devices
        host_free = 0.0
        now = 0.0
        index = 0

        while index < num_requests or queue:
            next_arrival = (requests[index].arrival_s
                            if index < num_requests else math.inf)
            ready = self.batcher.ready_at(queue, now,
                                          self.service_estimate)
            if math.isinf(ready) and index >= num_requests and queue:
                # Trace over, policy would wait forever: flush.
                ready = now
            if next_arrival <= ready:
                now = max(now, next_arrival)
                if len(queue) >= self.max_queue:
                    report.dropped += 1
                else:
                    queue.append(requests[index])
                index += 1
                continue
            now = max(now, ready)
            batch = [queue.popleft()
                     for _ in range(min(self.batcher.max_batch,
                                        len(queue)))]
            host_free = self._dispatch_batch(
                batch, now, device_free, device_busy, host_free, report,
            )

        report.served = num_requests - report.dropped
        report.makespan_s = float(
            np.nanmax(report.latencies
                      + np.array([r.arrival_s for r in requests]))
            if report.served else now
        )
        report.device_busy_seconds = [float(b) for b in device_busy]
        report.device_idle_seconds = [
            max(0.0, report.makespan_s - b) for b in device_busy
        ]
        report.failed_devices = sorted(self.pool.failed)
        if self.swapper is not None:
            report.swap_records = list(self.swapper.records)
        if self.profiler is not None:
            self.profiler.charge("inference", report.makespan_s)
        return report

    # ------------------------------------------------------------------

    def _dispatch_batch(self, batch, dispatch_t, device_free,
                        device_busy, host_free, report) -> float:
        """Serve one closed batch; returns the updated host-free time."""
        if self.swapper is not None:
            swapped = self.swapper.poll(dispatch_t)
            if swapped is not None:
                self._compiled = swapped
                self._estimate_cache = {}
                # The commit's device load blocks every reloaded device.
                load = self.swapper.records[-1].load_seconds
                for i in self.pool.healthy_indices():
                    device_free[i] = max(device_free[i],
                                         dispatch_t + load)

        rows = len(batch)
        compiled = self._compiled
        x = np.stack([request.features for request in batch])
        quantized = compiled.model.input_spec.qparams.quantize(x)

        predictions = None
        completion = None
        detect_t = dispatch_t
        attempts = 0
        failed_once = False
        while attempts < 2:
            healthy = self.pool.healthy_indices()
            if not healthy:
                break
            chosen = min(healthy, key=lambda i: (device_free[i], i))
            start = max(detect_t, device_free[chosen])
            try:
                invoke = self.pool.try_invoke(chosen, quantized,
                                              at_s=start)
            except DeviceFailedError as err:
                attempts += 1
                failed_once = True
                detect_t = start + err.detect_seconds
                continue
            device_done = start + invoke.elapsed_s
            device_free[chosen] = device_done
            device_busy[chosen] += invoke.elapsed_s
            predictions, tail_cost = run_host_tail(
                compiled, invoke.outputs, self.host,
            )
            host_free = max(host_free, device_done) + tail_cost
            report.host_seconds += tail_cost
            completion = host_free
            if failed_once:
                report.retried_batches += 1
            break

        if predictions is None:
            # Retry exhausted or no healthy device: the CPU-fallback op
            # path — the same fused int8 kernels on the host,
            # bit-identical.  Modeled cost stays per-op (fusion is
            # execution dispatch, not a timing change).
            width = compiled.model.input_spec.size
            cost = 0.0
            for op in list(compiled.tpu_ops) + list(compiled.cpu_ops):
                cost += cpu_op_seconds(self.host, op, rows, width)
                width = op.output_dim(width)
            out = quantized
            for stage in compiled.host_stages():
                out = stage(out)
            if compiled.model.output_is_index:
                predictions = out[:, 0]
            else:
                cost += self.host.argmax_seconds(rows, width)
                predictions = np.argmax(out, axis=-1)
            host_free = max(host_free, detect_t) + cost
            report.host_seconds += cost
            completion = host_free
            report.fallback_batches += 1

        report.num_batches += 1
        report.batch_sizes.append(rows)
        for request, prediction in zip(batch, predictions):
            report.predictions[request.request_id] = prediction
            latency = completion - request.arrival_s
            report.latencies[request.request_id] = latency
            report.latency.record(latency)
            if completion > request.deadline_s:
                report.deadline_misses += 1
        return host_free
