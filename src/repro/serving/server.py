"""The online inference server: event loop, admission, faults, swaps.

:class:`InferenceServer` simulates serving a timestamped request trace
on the repo's virtual-clock convention.  Each component mirrors a piece
of a production serving stack:

- **Admission control** — a bounded request queue; arrivals past the
  bound are dropped and accounted (the graceful-degradation alternative
  to unbounded latency collapse).
- **Batching** — a pluggable policy (:mod:`repro.serving.batcher`)
  decides when the queue closes into a micro-batch; the batch then runs
  on the earliest-free device of a replicated
  :class:`~repro.edgetpu.multidevice.DevicePool` with the host
  dequantize/argmax tail serialized behind it, exactly the timing model
  of :class:`~repro.runtime.executor.MicroBatchDispatcher`.
- **Fault tolerance** — device failures injected via
  :class:`~repro.edgetpu.multidevice.FailurePlan` are detected at
  dispatch (paying the modeled detection cost), retried once on the
  next healthy device, and finally served by the existing CPU-fallback
  op path — the same int8 kernels run on the host, so predictions stay
  bit-identical and in request order, only slower.
- **Hot swap** — a :class:`~repro.serving.swap.ModelSwapper` commits a
  freshly retrained model atomically between batches.
- **Tiered degradation** — given a compression tier ladder
  (:class:`~repro.compression.tiers.TierSet`), overload sheds batches
  to a cheaper co-resident tier instead of dropping them: when the
  queue is deep or the full tier's predicted completion threatens the
  earliest deadline (per the :class:`~repro.config.TierPolicy`), the
  batch runs on a compressed or distilled model already loaded next to
  the primary, trading a few accuracy points for meeting the SLA.

Latency is tracked per request on the virtual clock
(:class:`~repro.runtime.profiler.LatencyTracker` percentiles), so p99
against an SLA is a first-class, machine-independent output.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.config import ServeConfig, TierPolicy
from repro.edgetpu.compiler import CompiledModel
from repro.edgetpu.multidevice import DeviceFailedError, DevicePool
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import Tracer
from repro.platforms.base import Platform
from repro.runtime.cache import LruCache
from repro.runtime.executor import cpu_op_seconds, run_host_tail
from repro.runtime.profiler import LatencyTracker
from repro.serving.batcher import DynamicBatcher
from repro.serving.swap import ModelSwapper, SwapRecord

__all__ = ["InferenceServer", "ServeReport"]


@dataclass
class ServeReport:
    """Everything one :meth:`InferenceServer.serve` run produced.

    Attributes:
        num_requests: Requests in the trace.
        served: Requests that received a prediction.
        dropped: Requests rejected by admission control (bounded queue).
        deadline_misses: Served requests whose completion passed their
            deadline.
        predictions: int64 class indices in *request order*; ``-1``
            marks a dropped request.
        labels: Ground-truth labels in request order (``None`` when the
            trace carried no labels).
        latencies: Per-request completion-minus-arrival seconds in
            request order (``nan`` for dropped requests).
        latency: Percentile tracker over served requests.
        makespan_s: Virtual time of the last completion.
        num_batches: Batches dispatched.
        batch_sizes: Size of each dispatched batch, in dispatch order.
        device_busy_seconds: Per-device busy seconds.
        device_swap_seconds: Per-device seconds spent blocked reloading
            a hot-swapped model (commit blocks every healthy device for
            the load time; without this field that time would read as
            idle).
        device_idle_seconds: Per-device
            ``makespan - busy - swap_load`` seconds.
        device_energy_j: Per-device modeled joules
            (:meth:`EdgeTpuDevice.energy_joules
            <repro.edgetpu.device.EdgeTpuDevice.energy_joules>`: active
            power x cumulative busy time, model loads included) — the
            term the placement optimizer's cost objective prices.
        host_seconds: Host busy seconds (tails + CPU fallback).
        retried_batches: Batches that succeeded on a retry device after
            a failure was detected.
        fallback_batches: Batches served entirely on the host CPU.
        failed_devices: Pool indices that failed during the run.
        swap_records: Committed hot swaps.
        tier_names: Tier ladder names when the server ran tiered
            (empty otherwise — the payload shape is unchanged for
            untiered runs).
        tier_batches: Batches dispatched per tier, by tier index.
        tier_served: Requests served per tier, by tier index.
        tier_sheds: Batches served on a degraded tier (index > 0).
        tier_build_accuracy: Each tier's build-time accuracy (from
            :attr:`Tier.build_accuracy <repro.compression.tiers.Tier>`;
            entries may be ``None``).
        request_tiers: Per-request tier index in request order (``-1``
            for dropped requests); ``None`` for untiered runs.
        tier_latency: Per-tier latency trackers over served requests.
        trace: The span trace of the run (``None`` unless the server was
            given a tracer / ``ServeConfig(tracing=True)``).
    """

    num_requests: int
    served: int = 0
    dropped: int = 0
    deadline_misses: int = 0
    predictions: np.ndarray = field(default_factory=lambda: np.empty(0))
    labels: np.ndarray | None = None
    latencies: np.ndarray = field(default_factory=lambda: np.empty(0))
    latency: LatencyTracker = field(default_factory=LatencyTracker)
    makespan_s: float = 0.0
    num_batches: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    device_busy_seconds: list[float] = field(default_factory=list)
    device_swap_seconds: list[float] = field(default_factory=list)
    device_idle_seconds: list[float] = field(default_factory=list)
    device_energy_j: list[float] = field(default_factory=list)
    host_seconds: float = 0.0
    retried_batches: int = 0
    fallback_batches: int = 0
    failed_devices: list[int] = field(default_factory=list)
    swap_records: list[SwapRecord] = field(default_factory=list)
    tier_names: list[str] = field(default_factory=list)
    tier_batches: list[int] = field(default_factory=list)
    tier_served: list[int] = field(default_factory=list)
    tier_sheds: int = 0
    tier_build_accuracy: list[float | None] = field(default_factory=list)
    request_tiers: np.ndarray | None = None
    tier_latency: list[LatencyTracker] = field(default_factory=list)
    trace: Tracer | None = None

    @property
    def throughput(self) -> float:
        """Served requests per virtual second."""
        if self.makespan_s <= 0:
            return 0.0
        return self.served / self.makespan_s

    @property
    def drop_rate(self) -> float:
        """Fraction of the trace rejected by admission control."""
        if self.num_requests == 0:
            return 0.0
        return self.dropped / self.num_requests

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of *served* requests that finished past deadline."""
        if self.served == 0:
            return 0.0
        return self.deadline_misses / self.served

    @property
    def utilization(self) -> float:
        """Fraction of pooled device time spent busy.

        Swap-reload time counts toward the denominator (the device was
        occupied, not serving) but never toward busy time.
        """
        busy = sum(self.device_busy_seconds)
        total = (busy + sum(self.device_idle_seconds)
                 + sum(self.device_swap_seconds))
        return busy / total if total > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average dispatched batch size."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    @property
    def accuracy(self) -> float | None:
        """Mean accuracy over served requests (``None`` without labels)."""
        if self.labels is None or self.served == 0:
            return None
        mask = self.predictions >= 0
        return float(np.mean(self.predictions[mask] == self.labels[mask]))

    @property
    def shed_rate(self) -> float:
        """Fraction of dispatched batches served on a degraded tier."""
        if self.num_batches == 0:
            return 0.0
        return self.tier_sheds / self.num_batches

    def tier_accuracy(self) -> list[float | None]:
        """Served accuracy per tier index (``None`` for unused tiers).

        Raises:
            ValueError: If the run was untiered or carried no labels.
        """
        if self.request_tiers is None:
            raise ValueError("run was not tiered")
        if self.labels is None:
            raise ValueError("trace carried no labels")
        accuracies: list[float | None] = []
        for index in range(len(self.tier_names)):
            mask = self.request_tiers == index
            if not mask.any():
                accuracies.append(None)
            else:
                accuracies.append(float(np.mean(
                    self.predictions[mask] == self.labels[mask]
                )))
        return accuracies

    def windowed_accuracy(self, num_windows: int) -> list[float]:
        """Accuracy over ``num_windows`` equal request-index windows.

        Dropped requests are excluded inside each window; an all-dropped
        window reports ``nan``.  This is the curve that shows a static
        server decaying under drift and a swapping server recovering.
        """
        if num_windows < 1:
            raise ValueError(
                f"num_windows must be >= 1, got {num_windows}"
            )
        if self.labels is None:
            raise ValueError("trace carried no labels")
        edges = np.linspace(0, self.num_requests, num_windows + 1,
                            dtype=int)
        accuracies = []
        for start, stop in zip(edges[:-1], edges[1:]):
            preds = self.predictions[start:stop]
            labels = self.labels[start:stop]
            mask = preds >= 0
            if not mask.any():
                accuracies.append(float("nan"))
            else:
                accuracies.append(
                    float(np.mean(preds[mask] == labels[mask]))
                )
        return accuracies

    def summary(self) -> dict:
        """Machine-readable report (the serving benchmark's JSON rows).

        Keys follow the repo-wide result-schema convention (see
        :mod:`repro.api`): modeled durations end in ``_s``, rates in
        ``_rate``, counts are bare nouns, and a ``schema`` key versions
        the layout.
        """
        payload = {
            "schema": "repro.serve/1",
            "num_requests": self.num_requests,
            "served": self.served,
            "dropped": self.dropped,
            "drop_rate": self.drop_rate,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "throughput_rps": self.throughput,
            "makespan_s": self.makespan_s,
            "num_batches": self.num_batches,
            "mean_batch_size": self.mean_batch_size,
            "utilization": self.utilization,
            "host_s": self.host_seconds,
            "retried_batches": self.retried_batches,
            "fallback_batches": self.fallback_batches,
            "energy_j": sum(self.device_energy_j),
            "device_energy_j": list(self.device_energy_j),
            "failed_devices": list(self.failed_devices),
            "swaps_committed": len(self.swap_records),
            "swap_s": sum(r.modelgen_seconds + r.load_seconds
                          for r in self.swap_records),
            "swap_load_s": sum(self.device_swap_seconds),
            "latency": self.latency.summary(),
        }
        if self.labels is not None:
            payload["accuracy"] = self.accuracy
        if self.tier_names:
            tiers: dict = {
                "names": list(self.tier_names),
                "batches": list(self.tier_batches),
                "served": list(self.tier_served),
                "sheds": self.tier_sheds,
                "shed_rate": self.shed_rate,
                "build_accuracy": list(self.tier_build_accuracy),
                "latency": [t.summary() for t in self.tier_latency],
            }
            if self.labels is not None:
                tiers["accuracy"] = self.tier_accuracy()
            payload["tiers"] = tiers
        return payload


class InferenceServer:
    """Event-loop server over a replicated device pool.

    The preferred construction is ``InferenceServer(pool, config)`` with
    a :class:`~repro.config.ServeConfig` (or :func:`repro.api.serve`,
    which builds everything).  The original keyword form
    (``batcher=...``, ``max_queue=...``) still works through a
    deprecation shim.

    Args:
        pool: A :class:`DevicePool` loaded via
            :meth:`~repro.edgetpu.multidevice.DevicePool.load_replicated`.
        batcher: A :class:`~repro.config.ServeConfig` (preferred), or a
            batch-closing policy instance (deprecated); defaults to a
            :class:`~repro.serving.batcher.DynamicBatcher` of 32.
        host: Host platform charged for tails and CPU fallback;
            defaults to :class:`~repro.platforms.cpu.MobileCpu`.
        max_queue: Admission bound — arrivals beyond this queue depth
            are dropped (deprecated; set it on the config).
        swapper: Optional :class:`~repro.serving.swap.ModelSwapper`
            whose scheduled swaps commit at batch boundaries.
        profiler: Optional :class:`~repro.runtime.profiler.PhaseProfiler`;
            the serve makespan is charged under ``inference``.
        config: The :class:`~repro.config.ServeConfig`, when not passed
            positionally.  ``config.tracing=True`` records per-request
            spans onto :attr:`ServeReport.trace`.
        tiers: Optional compression tier ladder
            (:class:`~repro.compression.tiers.TierSet` or a list of
            tiers).  Tier 0's compiled model must be the one the pool
            already serves; degraded tiers are made co-resident on
            every healthy device at construction (a deployment-time
            load, like the primary's).  ``config.tiers`` (a
            :class:`~repro.config.TierPolicy`) controls when batches
            shed; the default policy applies when unset.
        tracer: Explicit :class:`~repro.observability.trace.Tracer` to
            record into (overrides ``config.tracing``).
        metrics: Optional
            :class:`~repro.observability.metrics.MetricsRegistry`;
            the serve loop maintains ``serve.*`` counters, the queue
            depth gauge and latency/batch-size histograms in it.
    """

    def __init__(self, pool: DevicePool, batcher=None,
                 host: Platform | None = None, max_queue: int | None = None,
                 swapper: ModelSwapper | None = None, profiler=None, *,
                 config: ServeConfig | None = None,
                 tiers=None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None):
        if isinstance(batcher, ServeConfig):
            if config is not None:
                raise TypeError(
                    "pass the ServeConfig positionally or as config=, "
                    "not both"
                )
            config = batcher
            batcher = None
        if config is not None:
            if batcher is not None or max_queue is not None:
                raise TypeError(
                    "config= cannot be combined with the deprecated "
                    "batcher=/max_queue= keywords"
                )
            batcher = config.make_batcher()
            max_queue = config.max_queue
            if tracer is None and config.tracing:
                tracer = Tracer(enabled=True)
        elif batcher is not None or max_queue is not None:
            warnings.warn(
                "keyword construction of InferenceServer is deprecated; "
                "pass a repro.config.ServeConfig (or use repro.api.serve)",
                DeprecationWarning, stacklevel=2,
            )
        if max_queue is None:
            max_queue = 256
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if host is None:
            from repro.platforms.cpu import MobileCpu
            host = MobileCpu()
        loaded = [m for m in pool.models if m is not None]
        if not loaded:
            raise RuntimeError("no models loaded; load the pool first")
        for other in loaded[1:]:
            # Heterogeneous pools hold per-backend recompilations of the
            # same flat model (see DevicePool._variant_for); that still
            # counts as replicated — every device answers every request.
            if other is not loaded[0] and other.model is not loaded[0].model:
                raise ValueError(
                    "serving requires the replicated placement; use "
                    "DevicePool.load_replicated()"
                )
        if swapper is not None and swapper.pool is not pool:
            raise ValueError("swapper is bound to a different pool")
        self.pool = pool
        self.config = config
        self.batcher = batcher if batcher is not None else DynamicBatcher()
        self.host = host
        self.max_queue = max_queue
        self.swapper = swapper
        self.profiler = profiler
        self.tracer = tracer
        self.metrics = metrics
        self._compiled: CompiledModel = loaded[0]
        # Per-batch-size service estimates are pure in (compiled model,
        # batch); the event loop re-evaluates the batch trigger after
        # every arrival, so memoize instead of re-deriving the latency
        # plan each time.  Bounded LRUs (evicted entries recompute
        # identically); invalidated on hot swap.
        self._estimate_cache: LruCache = LruCache(128)
        # Host-tail seconds per (model identity, charged rows) on the
        # deferred-dispatch path.  Safe unbounded: keys are the few
        # resident models x batch sizes up to max_batch; keyed by id()
        # because the fast path forbids hot swaps, so every compiled
        # model here is pinned for the server's lifetime.
        self._tail_cache: dict[tuple[int, int], float] = {}
        self._tiers = None
        self._tier_policy: TierPolicy | None = None
        self.tier_load_s = 0.0
        # Degraded-tier estimates never invalidate: a hot swap replaces
        # only the primary (tier 0), the ladder stays resident.
        self._degraded_estimates: LruCache = LruCache(256)
        self._active_tier = 0
        if tiers is not None:
            tier_list = list(tiers)
            if not tier_list:
                raise ValueError("tiers must contain at least one tier")
            if (tier_list[0].compiled is not self._compiled
                    and tier_list[0].compiled.model
                    is not self._compiled.model):
                raise ValueError(
                    "tier 0 must be the model the pool already serves; "
                    "load_replicated(tiers[0].compiled) first"
                )
            self._tier_policy = (config.tiers
                                 if config is not None
                                 and config.tiers is not None
                                 else TierPolicy())
            # Deployment-time load: the ladder rides along with the
            # primary before serving starts, so it is not charged to
            # the serve makespan (exactly like the primary's load).
            for tier in tier_list[1:]:
                self.tier_load_s = max(
                    self.tier_load_s, pool.load_resident(tier.compiled)
                )
            self._tiers = tier_list
        elif config is not None and config.tiers is not None:
            raise ValueError(
                "config.tiers sets a shedding policy but no tier "
                "ladder was provided; pass tiers="
            )
        self._plan = None
        if config is not None and config.plan is not None:
            from repro.runtime.plan import ServingPlan
            plan_cfg = config.plan
            max_bucket = (plan_cfg.max_bucket
                          if plan_cfg.max_bucket is not None
                          else config.max_batch)
            if max_bucket < config.max_batch:
                raise ValueError(
                    f"plan.max_bucket {max_bucket} is smaller than "
                    f"max_batch {config.max_batch}; the plan could not "
                    f"hold a full batch"
                )
            tier_models = ([t.compiled for t in self._tiers]
                           if self._tiers is not None
                           else [self._compiled])
            self._plan = ServingPlan(
                tier_models, max_bucket=max_bucket,
                allow_native=plan_cfg.native, prewarm=plan_cfg.prewarm,
            )

    # ------------------------------------------------------------------
    # Cost estimation (drives the deadline-aware batch trigger)
    # ------------------------------------------------------------------

    def _host_tail_seconds(self, compiled: CompiledModel,
                           rows: int) -> float:
        width = compiled.plans[-1].output_dim
        seconds = 0.0
        for op in compiled.cpu_ops:
            seconds += cpu_op_seconds(self.host, op, rows, width)
            width = op.output_dim(width)
        if not compiled.model.output_is_index:
            seconds += self.host.argmax_seconds(rows, width)
        return seconds

    def _charged_rows(self, batch_size: int) -> int:
        """Rows a dispatch actually charges: the padded bucket when a
        serving plan is active, the raw batch size otherwise."""
        if self._plan is not None:
            return self._plan.bucket_for(batch_size)
        return batch_size

    def service_estimate(self, batch_size: int) -> float:
        """Modeled device invoke + host tail for one batch (memoized).

        Under a serving plan the estimate is evaluated at the padded
        bucket size — the rows the device would actually be charged
        for — so the batch trigger sees the real dispatch cost.
        """
        if batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        estimate = self._estimate_cache.get(batch_size)
        if estimate is None:
            rows = self._charged_rows(batch_size)
            # A heterogeneous pool serves per-backend variants of the
            # primary; the batch trigger must plan for the slowest one
            # (it cannot know which device a batch will land on).  On a
            # homogeneous pool this is the single compiled model and the
            # estimate is unchanged.
            variants = {id(self._compiled): self._compiled}
            for model in self.pool.models:
                if model is not None and model.model is self._compiled.model:
                    variants.setdefault(id(model), model)
            estimate = max(
                compiled.invoke_seconds(rows)
                + self._host_tail_seconds(compiled, rows)
                for compiled in variants.values()
            )
            self._estimate_cache.put(batch_size, estimate)
        return estimate

    def _tier_estimate(self, tier_index: int, batch_size: int) -> float:
        """Service estimate on tier ``tier_index`` (memoized)."""
        if tier_index == 0:
            return self.service_estimate(batch_size)
        key = (tier_index, batch_size)
        estimate = self._degraded_estimates.get(key)
        if estimate is None:
            compiled = self._tiers[tier_index].compiled
            rows = self._charged_rows(batch_size)
            estimate = (compiled.invoke_seconds(rows)
                        + self._host_tail_seconds(compiled, rows))
            self._degraded_estimates.put(key, estimate)
        return estimate

    def _select_tier(self, deadlines, dispatch_t, device_free,
                     queue_depth) -> int:
        """Pick the serving tier for one closed batch.

        Pure in the modeled state (earliest device availability, queue
        depth, deadlines — here the batch's absolute-deadline column),
        so tier choice is deterministic per trace.  The full tier
        serves unless the policy trips; then the lowest-index degraded
        tier whose predicted completion restores the headroom wins,
        falling back to the cheapest tier.
        """
        if self._tiers is None:
            return 0
        policy = self._tier_policy
        healthy = self.pool.healthy_indices()
        earliest = min(
            (max(dispatch_t, device_free[i]) for i in healthy),
            default=dispatch_t,
        )
        budget = float(np.min(deadlines)) - policy.headroom_s
        rows = len(deadlines)
        if (queue_depth < policy.queue_high
                and earliest + self._tier_estimate(0, rows) <= budget):
            return 0
        for index in range(1, len(self._tiers)):
            if earliest + self._tier_estimate(index, rows) <= budget:
                return index
        return len(self._tiers) - 1

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def serve(self, requests) -> ServeReport:
        """Run the trace to completion; returns the serving report.

        Requests must be in arrival order (as
        :meth:`~repro.serving.arrivals.RequestStream.generate` emits
        them).  The loop runs as a :class:`~repro.cluster.replica.Replica`
        actor on the :class:`~repro.cluster.engine.EventEngine`: each
        arrival is one event, the pending batch dispatch is one
        (rescheduled) event, and the engine's deterministic ``(time,
        seq)`` order reproduces the old alternate-and-take-the-earlier
        loop exactly — arrivals win ties, batching decisions see
        precisely the arrivals a real server would have seen by that
        time.

        Args:
            requests: A list (or tuple) of requests — the exact path,
                byte-identical to the historical loop — or any iterator
                of them, consumed lazily so a 10⁶-request trace is
                never materialized.
        """
        # Local import: the cluster layer builds on serving, so the
        # dependency must point that way at module-import time.
        from repro.cluster.engine import EventEngine
        from repro.cluster.replica import Replica

        engine = EventEngine()
        replica = Replica(self, engine)
        replica.bind(requests)
        engine.run()
        return replica.finalize()

    # ------------------------------------------------------------------

    def _dispatch_batch(self, batch, dispatch_t, device_free,
                        device_busy, device_swap, host_free, report,
                        tracer=None, root=None, queue_depth=0) -> float:
        """Serve one closed batch; returns the updated host-free time.

        Thin adapter over :meth:`_dispatch_columns`: splits the request
        objects into the id/arrival/deadline columns the columnar core
        consumes.  The signature (and behavior) is frozen — the
        pre-engine reference oracle in :mod:`repro.serving._reference`
        calls it directly.
        """
        rows = len(batch)
        ids = np.fromiter((r.request_id for r in batch),
                          dtype=np.int64, count=rows)
        arrivals = np.fromiter((r.arrival_s for r in batch),
                               dtype=np.float64, count=rows)
        deadlines = np.fromiter((r.deadline_s for r in batch),
                                dtype=np.float64, count=rows)
        features = [r.features for r in batch]
        return self._dispatch_columns(
            ids, arrivals, deadlines, features, dispatch_t,
            device_free, device_busy, device_swap, host_free, report,
            tracer, root, queue_depth=queue_depth,
        )

    def _dispatch_columns(self, ids, arrivals, deadlines, features,
                          dispatch_t, device_free, device_busy,
                          device_swap, host_free, report, tracer=None,
                          root=None, queue_depth=0, defer=None) -> float:
        """Serve one closed batch given as columns; returns the updated
        host-free time.

        The columnar core of the dispatch path: ``ids``/``arrivals``/
        ``deadlines`` are aligned int64/float64 arrays, ``features`` a
        row list or 2-D array (ignored when deferring).  The per-request
        report bookkeeping — prediction/latency scatter, latency
        histograms, deadline misses, tier columns — is one vectorized
        slice write per batch instead of a Python loop per request,
        with float arithmetic elementwise-identical to the scalar loop
        it replaced.

        When ``defer`` is a :class:`~repro.cluster.fastpath`
        deferred-prediction sink, the device invoke is charged by
        :meth:`~repro.edgetpu.multidevice.DevicePool.invoke_cost`
        (timing only) and ``(compiled, ids)`` is handed to ``defer`` —
        the fast path computes all predictions in one pass after the
        simulation, byte-identically (modeled times never depend on
        predicted values).
        """
        if self.swapper is not None:
            swapped = self.swapper.poll(dispatch_t)
            if swapped is not None:
                self._compiled = swapped
                self._estimate_cache = LruCache(128)
                if self._plan is not None:
                    # Recompile tier 0's arena plan for the new
                    # weights; degraded tiers keep theirs.
                    self._plan.replace_primary(swapped)
                # The commit's device load blocks every reloaded device.
                load = self.swapper.records[-1].load_seconds
                for i in self.pool.healthy_indices():
                    # Account the non-overlapped part of the reload
                    # window (report-only: a device still finishing a
                    # batch absorbs part of the reload into busy time,
                    # and the event times below are unchanged).
                    device_swap[i] += max(
                        0.0,
                        dispatch_t + load
                        - max(dispatch_t, device_free[i]),
                    )
                    device_free[i] = max(device_free[i],
                                         dispatch_t + load)
                if tracer is not None:
                    tracer.add("model.swap", dispatch_t,
                               dispatch_t + load, parent_id=root,
                               tags=("swap",), load_s=load)

        rows = len(ids)
        tier_index = self._select_tier(deadlines, dispatch_t,
                                       device_free, queue_depth)
        if tier_index == 0:
            # Tier 0 is whatever the pool currently serves as primary
            # (it tracks hot swaps); degraded tiers are fixed resident
            # models.
            compiled = self._compiled
            invoke_model = None
        else:
            compiled = self._tiers[tier_index].compiled
            invoke_model = compiled
        if self._tiers is not None:
            report.tier_batches[tier_index] += 1
            if tier_index != 0:
                report.tier_sheds += 1
            if self.metrics is not None:
                name = self._tiers[tier_index].name
                self.metrics.counter(
                    f"serve.tier_batches.{name}"
                ).inc()
                self.metrics.counter(
                    f"serve.tier_served.{name}"
                ).inc(rows)
                self.metrics.gauge("serve.tier_active").set(tier_index)
                if tier_index != 0:
                    self.metrics.counter("serve.tier_sheds").inc()
            if tracer is not None and tier_index != self._active_tier:
                # Zero-duration marker: the policy changed the serving
                # tier at this batch boundary.
                tracer.add("tier.switch", dispatch_t, dispatch_t,
                           parent_id=root, tags=("tier",),
                           from_tier=self._active_tier,
                           to_tier=tier_index,
                           tier=self._tiers[tier_index].name)
            self._active_tier = tier_index
        plan_model = (self._plan.plan_for(compiled)
                      if self._plan is not None else None)
        if defer is not None:
            # Deferred path: no staging at all — modeled cost is a
            # function of the charged row count alone, and the
            # arithmetic happens after the simulation.
            quantized = None
            executor = None
            charged = self._charged_rows(rows)
        elif plan_model is not None:
            # Arena path: features land in the plan's preallocated
            # scratch and quantize in place, padded to the bucket with
            # zero-point rows (their outputs are sliced off below).
            quantized = plan_model.stage(features)
            executor = plan_model.executor_for(len(quantized))
            charged = len(quantized)
        else:
            x = (features if isinstance(features, np.ndarray)
                 else np.stack(features))
            quantized = compiled.model.input_spec.qparams.quantize(x)
            executor = None
            charged = rows

        batch_span = (tracer.add("serve.batch", dispatch_t, dispatch_t,
                                 parent_id=root, batch=rows,
                                 tier=tier_index)
                      if tracer is not None else None)
        predictions = None
        deferred_served = False
        completion = None
        detect_t = dispatch_t
        attempts = 0
        failed_once = False
        while attempts < 2:
            healthy = self.pool.healthy_indices()
            if not healthy:
                break
            chosen = min(healthy, key=lambda i: (device_free[i], i))
            start = max(detect_t, device_free[chosen])
            try:
                if defer is not None:
                    invoke = self.pool.invoke_cost(chosen, charged,
                                                   at_s=start,
                                                   model=invoke_model)
                else:
                    invoke = self.pool.try_invoke(chosen, quantized,
                                                  at_s=start,
                                                  model=invoke_model,
                                                  executor=executor)
            except DeviceFailedError as err:
                attempts += 1
                failed_once = True
                detect_t = start + err.detect_seconds
                if tracer is not None:
                    tracer.add("device.detect", start, detect_t,
                               parent_id=batch_span, tags=("failure",),
                               device=chosen)
                continue
            device_done = start + invoke.elapsed_s
            device_free[chosen] = device_done
            device_busy[chosen] += invoke.elapsed_s
            if defer is not None:
                # The host tail is charged at the rows the device ran
                # (the padded bucket under a plan) — the same per-op
                # sum run_host_tail/run_tail would have accumulated.
                defer.add(compiled, ids)
                deferred_served = True
                key = (id(compiled), charged)
                tail_cost = self._tail_cache.get(key)
                if tail_cost is None:
                    tail_cost = self._host_tail_seconds(compiled,
                                                        charged)
                    self._tail_cache[key] = tail_cost
            elif plan_model is not None:
                # Arena tail (bit-identical to run_host_tail); the
                # modeled cost is the same per-op plan evaluated at the
                # padded rows the device just ran.
                predictions = plan_model.run_tail(invoke.outputs)[:rows]
                tail_cost = self._host_tail_seconds(
                    compiled, len(invoke.outputs)
                )
            else:
                predictions, tail_cost = run_host_tail(
                    compiled, invoke.outputs, self.host,
                )
            tail_start = max(host_free, device_done)
            host_free = tail_start + tail_cost
            report.host_seconds += tail_cost
            completion = host_free
            if failed_once:
                report.retried_batches += 1
            if tracer is not None:
                # elapsed_s carries the exact device charge: recomputing
                # it as end_s - start_s can differ in the last float bit.
                tracer.add("device.invoke", start, device_done,
                           parent_id=batch_span, phase="inference",
                           device=chosen, batch=rows,
                           elapsed_s=invoke.elapsed_s,
                           bytes_in=invoke.bytes_in,
                           bytes_out=invoke.bytes_out,
                           tags=("retry",) if failed_once else ())
                tracer.add("host.tail", tail_start, host_free,
                           parent_id=batch_span, phase="inference",
                           batch=rows)
            break

        if predictions is None and not deferred_served:
            # Retry exhausted or no healthy device: the CPU-fallback op
            # path — the same fused int8 kernels on the host,
            # bit-identical.  Modeled cost stays per-op (fusion is
            # execution dispatch, not a timing change).
            width = compiled.model.input_spec.size
            cost = 0.0
            for op in list(compiled.tpu_ops) + list(compiled.cpu_ops):
                cost += cpu_op_seconds(self.host, op, charged, width)
                width = op.output_dim(width)
            if defer is not None:
                defer.add(compiled, ids)
                deferred_served = True
                if not compiled.model.output_is_index:
                    cost += self.host.argmax_seconds(charged, width)
            elif plan_model is not None:
                predictions = plan_model.run_host(quantized)[:rows]
                if not compiled.model.output_is_index:
                    cost += self.host.argmax_seconds(charged, width)
            else:
                out = quantized
                for stage in compiled.host_stages():
                    out = stage(out)
                if compiled.model.output_is_index:
                    predictions = out[:, 0]
                else:
                    cost += self.host.argmax_seconds(charged, width)
                    predictions = np.argmax(out, axis=-1)
            fallback_start = max(host_free, detect_t)
            host_free = fallback_start + cost
            report.host_seconds += cost
            completion = host_free
            report.fallback_batches += 1
            if tracer is not None:
                tracer.add("host.fallback", fallback_start, host_free,
                           parent_id=batch_span, phase="inference",
                           tags=("fallback",), batch=rows)

        report.num_batches += 1
        report.batch_sizes.append(rows)
        if defer is not None and defer.full:
            # Fully deferred bookkeeping: nothing observes per-request
            # report state mid-run (the cluster only grants ``full``
            # with no autoscaler, no metrics and no tiers, and the fast
            # path already excludes tracers), so one (ids, completion)
            # note replaces the whole per-batch epilogue — the scatter,
            # histogram ingest and miss count replay bit-identically at
            # resolve time.
            defer.book(ids, completion)
            return host_free
        if tracer is not None:
            tracer.finish(batch_span, completion)
        if self.metrics is not None:
            self.metrics.histogram("serve.batch_size").record(rows)
        # Columnar bookkeeping: one slice write (and one bulk histogram
        # ingest) per batch.  ``completion - arrivals`` is elementwise
        # IEEE-identical to the scalar per-request subtraction, so
        # every recorded latency carries the exact same bits.
        latencies = completion - arrivals
        if predictions is not None:
            report.predictions[ids] = predictions
        report.latencies[ids] = latencies
        report.latency.record_many(latencies)
        if report.request_tiers is not None:
            report.request_tiers[ids] = tier_index
            report.tier_served[tier_index] += rows
            report.tier_latency[tier_index].record_many(latencies)
        missed = deadlines < completion
        report.deadline_misses += int(np.count_nonzero(missed))
        if tracer is not None:
            id_list = ids.tolist()
            arrival_list = arrivals.tolist()
            missed_list = missed.tolist()
            for k in range(rows):
                span = tracer.add(
                    "request", arrival_list[k], completion,
                    parent_id=root,
                    tags=("deadline_miss",) if missed_list[k] else (),
                    request_id=id_list[k], batch=rows,
                )
                tracer.add("queue.wait", arrival_list[k], dispatch_t,
                           parent_id=span, request_id=id_list[k])
        if self.metrics is not None:
            self.metrics.histogram("serve.latency_s").record_many(
                latencies
            )
        return host_free
