"""Online serving: request streams, dynamic batching, faults, hot swap.

The paper's deployment story — an Edge TPU serving inference while the
host retrains — is an *online* system: requests arrive over time with
latency budgets, devices fail, and the deployed model goes stale under
drift.  This package simulates that service on the repo's virtual-clock
convention:

- :mod:`repro.serving.arrivals` — seeded Poisson/bursty arrival
  processes over drifting payload distributions, producing timestamped
  :class:`Request` traces.
- :mod:`repro.serving.batcher` — batch-closing policies: deadline-aware
  size-or-deadline (:class:`DynamicBatcher`) vs. the fixed-size
  baseline (:class:`FixedSizeBatcher`).
- :mod:`repro.serving.server` — the :class:`InferenceServer` event
  loop: bounded-queue admission, earliest-free-device dispatch, p99
  latency tracking, retry-once-then-CPU-fallback fault handling.
- :mod:`repro.serving.swap` — :class:`ModelSwapper`, committing a
  freshly retrained model atomically between batches while the old
  model keeps serving.

``benchmarks/test_serving.py`` runs the end-to-end comparisons (SLA
attainment, failure recovery, drift recovery via hot swap).
"""

from repro.config import ServeConfig
from repro.serving.arrivals import ArrivalProcess, Request, RequestStream
from repro.serving.batcher import DynamicBatcher, FixedSizeBatcher
from repro.serving.server import InferenceServer, ServeReport
from repro.serving.swap import ModelSwapper, PendingSwap, SwapRecord

__all__ = [
    "ArrivalProcess",
    "DynamicBatcher",
    "FixedSizeBatcher",
    "InferenceServer",
    "ModelSwapper",
    "PendingSwap",
    "Request",
    "RequestStream",
    "ServeConfig",
    "ServeReport",
    "SwapRecord",
]
