"""Validated, frozen configuration objects for the top-level API.

The pipelines and the server accreted keyword sprawl
(``TrainingPipeline(dimension=..., iterations=..., executor=...)``,
``InferenceServer(pool, batcher, host, max_queue, ...)``).  These
dataclasses collapse each sprawl into one immutable, validated value
that can be stored, compared, hashed into experiment manifests and
passed across the :mod:`repro.api` facade:

- :class:`PipelineConfig` — everything a training run needs.
- :class:`ServeConfig` — everything the online server needs.
- :class:`BackendSpec` / :class:`FleetSpec` — a heterogeneous device
  fleet, the input of :func:`repro.api.deploy` and the
  :class:`~repro.runtime.placement.PlacementOptimizer`.

All validate at construction (a bad config fails before any work
runs) and are frozen (a config can never drift mid-run).  The old
keyword constructors still work through deprecation shims on
:class:`~repro.runtime.pipeline.TrainingPipeline` and
:class:`~repro.serving.server.InferenceServer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.edgetpu.arch import EdgeTpuArch
from repro.edgetpu.backend import AcceleratorArch, backend_names, make_arch
from repro.hdc.bagging import BaggingConfig
from repro.platforms.base import Platform
from repro.runtime.executor import ExecutorConfig

__all__ = [
    "BackendSpec",
    "FleetSpec",
    "PipelineConfig",
    "PlanConfig",
    "ServeConfig",
    "TierPolicy",
]

_BATCHERS = ("dynamic", "fixed")


@dataclass(frozen=True)
class BackendSpec:
    """One device group in a fleet: a backend, a count, a price.

    Attributes:
        backend: Registered backend name
            (:func:`repro.edgetpu.backend.backend_names` lists them:
            ``"edgetpu"``, ``"edgetpu-small"``, ``"neuromorphic"``,
            ``"pi-cpu"``, plus anything user-registered).
        count: Devices of this type available to the fleet.
        unit_cost: Relative provisioning cost-rate of one device (the
            optimizer's hardware term; arbitrary consistent units —
            e.g. amortized dollars/hour).
        overrides: Architecture field overrides, as a mapping or as
            ``(key, value)`` pairs; normalized to a sorted tuple so the
            spec stays hashable and order-insensitive.
        name: Group label in placements and summaries; defaults to the
            backend name.
    """

    backend: str = "edgetpu"
    count: int = 1
    unit_cost: float = 1.0
    overrides: tuple = ()
    name: str = ""

    def __post_init__(self) -> None:
        if self.backend not in backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; registered: "
                f"{', '.join(backend_names())}"
            )
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.unit_cost < 0:
            raise ValueError(
                f"unit_cost must be >= 0, got {self.unit_cost}"
            )
        pairs = (tuple(sorted(self.overrides.items()))
                 if isinstance(self.overrides, dict)
                 else tuple(sorted(tuple(p) for p in self.overrides)))
        object.__setattr__(self, "overrides", pairs)
        if not self.name:
            object.__setattr__(self, "name", self.backend)

    def make(self) -> AcceleratorArch:
        """Resolve this spec to its architecture instance."""
        return make_arch(self.backend, **dict(self.overrides))


@dataclass(frozen=True)
class FleetSpec:
    """A heterogeneous device fleet, fully specified.

    The input of :func:`repro.api.deploy` and of the
    :class:`~repro.runtime.placement.PlacementOptimizer`, which chooses
    per-tenant backend, batch bucket and device shares minimizing
    ``device_cost_weight * provisioning + energy_weight * power`` under
    each tenant's deadline.  Group order is irrelevant — everything
    downstream iterates :meth:`groups` in canonical (name) order, so
    two fleets differing only in listing order place identically.

    Attributes:
        backends: The device groups; a single :class:`BackendSpec` is
            accepted and wrapped.
        utilization_target: Fraction of a device's throughput the
            optimizer is willing to commit (headroom for bursts).
        device_cost_weight: Weight of the provisioning term in the
            modeled cost-rate.
        energy_weight: Weight of the power term (watts) in the modeled
            cost-rate — the knob that makes the optimizer prefer the
            neuromorphic fabric for latency-tolerant tenants.
    """

    backends: tuple = (BackendSpec(),)
    utilization_target: float = 0.7
    device_cost_weight: float = 1.0
    energy_weight: float = 0.1

    def __post_init__(self) -> None:
        specs = self.backends
        if isinstance(specs, BackendSpec):
            specs = (specs,)
        specs = tuple(specs)
        if not specs:
            raise ValueError("a fleet needs at least one BackendSpec")
        for spec in specs:
            if not isinstance(spec, BackendSpec):
                raise TypeError(
                    f"backends entries must be BackendSpec, "
                    f"got {type(spec).__name__}"
                )
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(
                f"duplicate group names in fleet: {sorted(names)}; "
                f"disambiguate with BackendSpec(name=...)"
            )
        object.__setattr__(self, "backends", specs)
        if not 0.0 < self.utilization_target <= 1.0:
            raise ValueError(
                f"utilization_target must be in (0, 1], "
                f"got {self.utilization_target}"
            )
        if self.device_cost_weight < 0 or self.energy_weight < 0:
            raise ValueError("cost weights must be >= 0")

    @property
    def total_devices(self) -> int:
        """Devices across all groups."""
        return sum(spec.count for spec in self.backends)

    def groups(self) -> tuple[BackendSpec, ...]:
        """The device groups in canonical (name) order."""
        return tuple(sorted(self.backends, key=lambda s: s.name))

    @classmethod
    def single(cls, backend: str = "edgetpu", count: int = 1,
               **kwargs) -> "FleetSpec":
        """A homogeneous fleet of ``count`` ``backend`` devices."""
        spec_kwargs = {k: kwargs.pop(k) for k in
                       ("unit_cost", "overrides", "name") if k in kwargs}
        return cls(backends=(BackendSpec(backend=backend, count=count,
                                         **spec_kwargs),), **kwargs)


@dataclass(frozen=True)
class PlanConfig:
    """Ahead-of-time serving-plan knobs (``ServeConfig.plan``).

    When set, the server compiles a
    :class:`~repro.runtime.plan.ServingPlan` at construction: every
    tier's op chain is resolved into arena-backed kernels, scratch
    buffers are preallocated for a power-of-two bucket ladder, and the
    per-``(model, batch)`` latency memos (``lower()``,
    ``invoke_seconds``) are prewarmed — so the steady-state dispatch
    path performs no heap allocations and no cold cache fills.

    Attributes:
        max_bucket: Largest padded batch the arena is sized for; the
            bucket ladder is the powers of two up to it (plus itself
            when not a power of two).  ``None`` uses the server's
            ``max_batch``.
        native: Allow the AVX-512 VNNI kernels (:mod:`repro.native`)
            for stages that prove int32-safe; bit-identical either
            way, so this only trades speed.  Disabled automatically on
            unsupported CPUs.
        prewarm: Pre-fill the ``lower()`` / ``invoke_seconds`` /
            ``invoke_breakdown`` memos for every (tier, bucket) pair
            at plan build, keeping the serve loop free of cold-path
            fills.
    """

    max_bucket: int | None = None
    native: bool = True
    prewarm: bool = True

    def __post_init__(self) -> None:
        if self.max_bucket is not None and self.max_bucket < 1:
            raise ValueError(
                f"max_bucket must be >= 1, got {self.max_bucket}"
            )


@dataclass(frozen=True)
class TierPolicy:
    """When the server sheds a batch to a cheaper resident tier.

    The server evaluates the policy at every batch dispatch: the full
    tier serves unless the queue is deep or the batch's predicted
    completion (earliest device availability plus the full tier's
    service estimate) would land within ``headroom_s`` of its earliest
    deadline — then the batch is shed to the lowest-index degraded
    tier that restores the headroom (or the cheapest tier if none
    does).

    Attributes:
        queue_high: Queue depth at dispatch at or above which the batch
            sheds regardless of deadline headroom (sustained-overload
            pressure valve).
        headroom_s: Slack the full tier's predicted completion must
            leave before the batch's earliest deadline.
    """

    queue_high: int = 64
    headroom_s: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_high < 1:
            raise ValueError(
                f"queue_high must be >= 1, got {self.queue_high}"
            )
        if self.headroom_s < 0:
            raise ValueError(
                f"headroom_s must be >= 0, got {self.headroom_s}"
            )


@dataclass(frozen=True)
class PipelineConfig:
    """One training run, fully specified.

    Attributes:
        dimension: Full hypervector width ``d``.
        iterations: Training passes (paper baseline 20; with bagging
            the sub-model iterations come from ``bagging.iterations``).
        bagging: The paper's bagging optimization; ``None`` trains one
            full-width model.
        learning_rate: Update scale.
        train_batch: Samples per device invocation while encoding.
        seed: Seed for hypervectors, bootstrap draws and shuffling.
        host: Host CPU cost model (:class:`~repro.platforms.cpu.MobileCpu`
            when ``None``).
        arch: Edge TPU architecture (defaults when ``None``).
        executor: Parallelism knobs; an int is shorthand for that many
            workers.  Normalized to an
            :class:`~repro.runtime.executor.ExecutorConfig` at
            construction.
        tracing: Record a span-level trace of the run (zero modeled
            cost either way; the trace rides on
            :attr:`PipelineResult.trace <repro.runtime.pipeline.PipelineResult>`).
    """

    dimension: int = 10_000
    iterations: int = 20
    bagging: BaggingConfig | None = None
    learning_rate: float = 0.035
    train_batch: int = 256
    seed: int | None = None
    host: Platform | None = None
    arch: EdgeTpuArch | None = None
    executor: ExecutorConfig | int | None = None
    tracing: bool = False

    def __post_init__(self) -> None:
        if self.dimension < 1 or self.iterations < 1 or self.train_batch < 1:
            raise ValueError(
                "dimension, iterations, train_batch must be >= 1"
            )
        if not self.learning_rate > 0:
            raise ValueError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )
        object.__setattr__(
            self, "executor", ExecutorConfig.coerce(self.executor)
        )


@dataclass(frozen=True)
class ServeConfig:
    """One online-serving deployment, fully specified.

    Attributes:
        batcher: ``"dynamic"`` (deadline-aware size-or-deadline) or
            ``"fixed"`` (size-or-timeout baseline).
        max_batch: Close a batch at this many queued requests.
        slack_s: Safety margin the dynamic batcher subtracts from the
            deadline trigger.
        timeout_s: Fixed batcher's age trigger; ``inf`` waits for a
            full batch.
        max_queue: Admission bound — arrivals beyond this queue depth
            are dropped.  ``0`` rejects everything (an admission-closed
            server; useful for drain tests).
        tracing: Record per-request spans
            (arrival → queue → batch → device → host tail).
        tiers: Load-shedding policy for a server given a compression
            tier ladder (``InferenceServer(..., tiers=...)``); ``None``
            uses the default :class:`TierPolicy` when tiers are
            present.
        plan: Ahead-of-time serving-plan knobs (:class:`PlanConfig`);
            ``None`` keeps the classic allocate-per-batch dispatch
            path.
    """

    batcher: str = "dynamic"
    max_batch: int = 32
    slack_s: float = 0.0
    timeout_s: float = math.inf
    max_queue: int = 256
    tracing: bool = False
    tiers: TierPolicy | None = None
    plan: PlanConfig | None = None

    def __post_init__(self) -> None:
        if self.tiers is not None and not isinstance(self.tiers,
                                                     TierPolicy):
            raise TypeError(
                f"tiers must be a TierPolicy or None, "
                f"got {type(self.tiers).__name__}"
            )
        if self.plan is not None and not isinstance(self.plan,
                                                    PlanConfig):
            raise TypeError(
                f"plan must be a PlanConfig or None, "
                f"got {type(self.plan).__name__}"
            )
        if self.batcher not in _BATCHERS:
            raise ValueError(
                f"batcher must be one of {_BATCHERS}, got {self.batcher!r}"
            )
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.slack_s < 0:
            raise ValueError(f"slack_s must be >= 0, got {self.slack_s}")
        if self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be > 0, got {self.timeout_s}"
            )
        if self.max_queue < 0:
            raise ValueError(
                f"max_queue must be >= 0, got {self.max_queue}"
            )

    def make_batcher(self):
        """Instantiate the configured batch-closing policy."""
        from repro.serving.batcher import DynamicBatcher, FixedSizeBatcher
        if self.batcher == "dynamic":
            return DynamicBatcher(max_batch=self.max_batch,
                                  slack_s=self.slack_s)
        return FixedSizeBatcher(max_batch=self.max_batch,
                                timeout_s=self.timeout_s)
