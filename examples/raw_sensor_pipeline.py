"""Raw-sensor edge pipeline: IMU traces → windows → features → Edge TPU.

The Table-I activity datasets (UCIHAR, PAMAP2) arrive as precomputed
windowed statistics; this example runs the *whole* pipeline a wearable
would: generate raw multichannel IMU traces per activity, cut sliding
windows, extract HAR-style features, train HDC, quantize, and deploy on
the simulated Edge TPU — then asks the placement advisor whether this
feature width even deserves the accelerator.

Run:  python examples/raw_sensor_pipeline.py
"""

from repro.data import ImuConfig, feature_count, make_activity_dataset
from repro.edgetpu import compile_model, lower
from repro.hdc import HDCClassifier
from repro.nn import from_classifier
from repro.runtime import InferencePipeline, PlacementAdvisor, Workload
from repro.tflite import convert


def main(num_windows: int = 200, dimension: int = 2048) -> None:
    config = ImuConfig(num_channels=6, num_activities=5, noise_std=0.6,
                       jitter=0.3)
    dataset = make_activity_dataset(
        num_windows_per_activity=num_windows, config=config, seed=9,
    ).normalized()
    print(f"raw pipeline: {config.num_channels}-channel IMU at "
          f"{config.sample_rate_hz:.0f} Hz -> 128-sample windows -> "
          f"{feature_count(config.num_channels)} features")
    print(f"dataset: train={dataset.num_train} test={dataset.num_test} "
          f"activities={dataset.num_classes}")

    model = HDCClassifier(dimension=dimension, seed=9)
    model.fit(dataset.train_x, dataset.train_y, iterations=6)
    print(f"float accuracy: {model.score(dataset.test_x, dataset.test_y):.3f}")

    flat = convert(from_classifier(model, include_argmax=True),
                   dataset.train_x[:128])
    compiled = compile_model(flat)
    inference = InferencePipeline(compiled, batch=1)
    outcome = inference.run(dataset.test_x, dataset.test_y)
    print(f"Edge TPU accuracy: {outcome.accuracy:.3f}  "
          f"({1e6 * outcome.seconds / dataset.num_test:.1f} us/sample)")

    # Is an accelerator even worth it at this feature width?
    workload = Workload(
        name="imu-activity",
        num_train=dataset.num_train, num_test=dataset.num_test,
        num_features=dataset.num_features,
        num_classes=dataset.num_classes,
    )
    decision = PlacementAdvisor().advise(workload)
    print(decision.summary())

    # Peek at the device program for one inference.
    program = lower(compiled, batch=1)
    print(f"device program: {len(program.instructions)} instructions, "
          f"{program.total_cycles:.0f} cycles, "
          f"{program.total_transfer_bytes} transfer bytes")


if __name__ == "__main__":
    main()
