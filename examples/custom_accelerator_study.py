"""Architecture study: how Edge TPU parameters shape HDC performance.

The simulator's architecture knobs are ordinary dataclass fields, so
"what if" studies the paper could not run on fixed silicon take a few
lines here:

- sweep the input feature count (reproducing the Fig. 10 curve) under
  *different* USB bandwidths — showing the speedup ceiling is a
  transfer artifact, not a compute limit;
- sweep the MXU size to see when the systolic array stops being the
  bottleneck for hyper-wide layers;
- check which Table-I models still fit on-chip if the parameter buffer
  shrinks.

Run:  python examples/custom_accelerator_study.py
"""

from repro.data import TABLE_I
from repro.edgetpu import make_arch
from repro.platforms import EdgeTpuPlatform
from repro.runtime import CostModel


def usb_bandwidth_sweep() -> None:
    print("== encoding speedup vs feature count, by USB bandwidth ==")
    features = (20, 100, 300, 700)
    print(f"  {'bandwidth':>12} " + " ".join(f"n={n:>4}" for n in features))
    for megabytes in (100, 320, 1000):
        arch = make_arch("edgetpu", usb_bytes_per_s=megabytes * 1e6)
        cm = CostModel(tpu=EdgeTpuPlatform(arch))
        speedups = [cm.encoding_speedup(10_000, n) for n in features]
        row = " ".join(f"{s:6.2f}" for s in speedups)
        print(f"  {megabytes:>9} MB/s {row}")
    print("  (faster links lift the whole curve: the encoded d-wide "
          "hypervectors dominate transfer)")


def mxu_size_sweep() -> None:
    print("\n== MNIST inference latency vs MXU size ==")
    from repro.data import TABLE_I
    from repro.runtime import HdcTrainingConfig, Workload
    workload = Workload.from_spec(TABLE_I["mnist"])
    config = HdcTrainingConfig()
    for size in (16, 32, 64, 128):
        arch = make_arch("edgetpu", mxu_rows=size, mxu_cols=size)
        cm = CostModel(tpu=EdgeTpuPlatform(arch))
        per_sample = 1e6 * cm.tpu_inference(workload, config) / workload.num_test
        print(f"  {size:3}x{size:<3} MXU: {per_sample:7.1f} us/sample")
    print("  (beyond 64x64 the USB dispatch floor dominates, so a bigger "
          "array buys little for batch-1 inference)")


def buffer_pressure() -> None:
    print("\n== on-chip parameter buffer pressure (d = 10,000, int8) ==")
    for name, spec in TABLE_I.items():
        weight_bytes = spec.num_features * 10_000 + 10_000 * spec.num_classes
        for buffer_mib in (4, 8):
            fits = weight_bytes <= buffer_mib * 1024 * 1024
            if buffer_mib == 8:
                note = "fits" if fits else "STREAMS over USB each invoke"
                print(f"  {name:7} {weight_bytes / 1e6:5.2f} MB of weights: "
                      f"{'fits' if weight_bytes <= 4 * 1024 * 1024 else 'spills'} "
                      f"in 4 MiB, {note} in 8 MiB")


def main() -> None:
    usb_bandwidth_sweep()
    mxu_size_sweep()
    buffer_pressure()


if __name__ == "__main__":
    main()
