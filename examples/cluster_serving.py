"""Cluster serving: sharded replicas, multi-tenant traffic, autoscaling.

Walks the fleet-scale serving subsystem end to end on the virtual
clock:

1. train an HDC classifier and compile it for the Edge TPU simulator;
2. serve a three-tenant traffic superposition (interactive / bursty /
   background, each with its own rate, process and deadline) on a
   four-replica fleet and report per-tenant SLA attainment;
3. compare how the four routing policies spread the same trace across
   the fleet;
4. push the offered load past one replica's capacity and sweep the
   replica count — the classic horizontal-scaling curve;
5. hit the fleet with a 10x flash crowd three ways: a base-provisioned
   static fleet (cheap, misses deadlines), a peak-provisioned static
   fleet (meets deadlines, pays for peak the whole run), and an
   autoscaler that must beat both at once.

All times are modeled seconds — runs are deterministic per seed.

Run:  python examples/cluster_serving.py
"""

import numpy as np

import repro
from repro.cluster import POLICIES
from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu import compile_model
from repro.hdc import HDCClassifier
from repro.nn import from_classifier
from repro.tflite import convert

NUM_FEATURES = 16
NUM_CLASSES = 3


def train(dimension: int = 512, seed: int = 0):
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=2,
    )
    x, y = stream.next_batch(400)
    model = HDCClassifier(dimension=dimension,
                          seed=np.random.default_rng(seed))
    model.fit(x, y, iterations=4, num_classes=NUM_CLASSES)
    network = from_classifier(model, include_argmax=True)
    return compile_model(convert(network, x[:128]))


def main() -> None:
    compiled = train()
    # Close batches at 8 requests: at these rates a batch fills in a
    # few ms, so no tenant waits on another tenant's laxer deadline.
    serve = repro.ServeConfig(max_batch=8, max_queue=50_000)

    # --- A three-tenant fleet --------------------------------------
    tenants = (
        repro.TenantSpec("interactive", rate_hz=2000.0, deadline_s=0.02),
        repro.TenantSpec("bursty", rate_hz=1000.0, deadline_s=0.1,
                         kind="bursty"),
        repro.TenantSpec("background", rate_hz=500.0, deadline_s=1.0),
    )
    report = repro.serve_cluster(compiled, config=repro.ClusterConfig(
        tenants=tenants, total_requests=20_000, num_replicas=4,
        policy="round_robin", serve=serve, seed=7,
    ))
    print(f"fleet: {report.num_replicas} replicas served "
          f"{report.served}/{report.num_requests} requests in "
          f"{report.makespan_s:.2f} modeled s "
          f"({report.throughput:,.0f} req/s, "
          f"p99 {1e3 * report.latency.p99:.2f} ms)")
    for row in report.tenants:
        print(f"  {row['name']:>12}: {row['requests']} requests, "
              f"deadline {1e3 * row['deadline_s']:.0f} ms, "
              f"SLA attained {row['sla_attainment']:.1%}, "
              f"p99 {1e3 * row['latency']['p99_s']:.2f} ms")

    # --- Routing policies ------------------------------------------
    # ``placed`` routes by an optimizer placement, so build one (a
    # homogeneous fleet here — the optimizer still picks each tenant's
    # replica, device share and batch bucket).
    placement = repro.PlacementOptimizer(
        repro.FleetSpec.single("edgetpu", count=8)
    ).place(compiled, tenants)
    print("\nrouted per replica, same trace, each policy:")
    for policy in POLICIES:
        overrides = ({"placement": placement} if policy == "placed"
                     else {"num_replicas": 4})
        summary = repro.serve_cluster(compiled, config=repro.ClusterConfig(
            tenants=tenants, total_requests=6_000,
            policy=policy, serve=serve, seed=7, **overrides,
        )).summary()
        counts = "  ".join(f"{c:>5}" for c in summary["routed"])
        print(f"  {policy:>15}: {counts}")
    print("  (least_queue ties break toward replica 0 — queues drain "
          "at batcher-ready\n   times, so depth rarely differentiates; "
          "the hash ring is sticky per tenant,\n   so 3 tenants land "
          "on at most 3 replicas)")

    # --- Horizontal scaling under saturating load ------------------
    # ~105k req/s offered against one device's ~87k req/s batch-8
    # service rate: a single replica's backlog grows without bound.
    heavy = (
        repro.TenantSpec("interactive", rate_hz=60000.0, deadline_s=0.01),
        repro.TenantSpec("bursty", rate_hz=30000.0, deadline_s=0.05,
                         kind="bursty"),
        repro.TenantSpec("background", rate_hz=15000.0, deadline_s=0.2),
    )
    print("\nreplica sweep at ~105k req/s offered load:")
    for num_replicas in (1, 2, 4):
        summary = repro.serve_cluster(compiled, config=repro.ClusterConfig(
            tenants=heavy, total_requests=40_000,
            num_replicas=num_replicas, devices_per_replica=1,
            policy="round_robin", serve=serve, seed=7,
        )).summary()
        print(f"  {num_replicas} replica(s): "
              f"p99 {1e3 * summary['latency']['p99_s']:>8.2f} ms  "
              f"misses {summary['deadline_miss_rate']:>6.1%}  "
              f"throughput {summary['throughput_rps']:>9,.0f} req/s")

    # --- Autoscaling through a 10x flash crowd ---------------------
    spike = (
        repro.TenantSpec("spiky", rate_hz=25000.0, deadline_s=0.01,
                         curve=repro.DiurnalCurve(spike_at_s=0.3,
                                                  spike_duration_s=0.5,
                                                  spike_factor=10.0)),
        repro.TenantSpec("steady", rate_hz=10000.0, deadline_s=0.05),
    )
    autoscaler = repro.AutoscalerConfig(
        interval_s=0.05, queue_high=1024, queue_low=64, miss_high=0.05,
        miss_low=0.01, up_streak=1, down_streak=4, cooldown_s=0.05,
        provision_s=0.1, max_devices=8,
    )

    def crowd(devices_per_replica, scaler=None):
        return repro.serve_cluster(compiled, config=repro.ClusterConfig(
            tenants=spike, total_requests=180_000, num_replicas=2,
            devices_per_replica=devices_per_replica,
            policy="round_robin", serve=serve, seed=11,
            autoscaler=scaler,
        ))

    print("\n10x flash crowd, three fleets:")
    runs = [("static (base)", crowd(1)),
            ("static (peak)", crowd(4)),
            ("autoscaled", crowd(1, autoscaler))]
    for name, run in runs:
        ups = sum(1 for e in run.scaling_events if e.action == "scale_up")
        downs = sum(1 for e in run.scaling_events
                    if e.action == "scale_down")
        print(f"  {name:>13}: misses {run.deadline_miss_rate:>6.1%}  "
              f"device-seconds {run.device_seconds:>6.2f}  "
              f"scale ups/downs {ups}/{downs}")
    base, peak, auto = (run for _, run in runs)
    print(f"autoscaler beats base on misses "
          f"({auto.deadline_miss_rate:.1%} < "
          f"{base.deadline_miss_rate:.1%}) and peak on cost "
          f"({auto.device_seconds:.2f} < {peak.device_seconds:.2f} "
          f"device-seconds), paying a {autoscaler.provision_s * 1e3:.0f}"
          f" ms provisioning lead on each scale-up")


if __name__ == "__main__":
    main()
