"""Online serving: deadline-aware batching, fault tolerance, hot swap.

Walks the serving subsystem end to end on the virtual clock:

1. train an HDC classifier on a drifting synthetic stream and compile
   it for the Edge TPU simulator;
2. generate a timestamped request trace (Poisson arrivals, per-request
   latency deadline) and serve it with deadline-aware dynamic batching
   on a small device pool, reporting p50/p95/p99 latency;
3. compare against a fixed-size batcher that waits for full batches;
4. inject a USB stall on one device mid-stream and show the server
   completing the trace via retry + CPU fallback with bit-identical
   predictions;
5. hot-swap in a retrained model mid-stream and show accuracy
   recovering under drift, versus a static server;
6. compress the model into a resident tier ladder and show the server
   shedding overload bursts to cheaper tiers instead of missing
   deadlines.

All times are modeled seconds — runs are deterministic per seed.

Run:  python examples/online_serving.py
"""

import numpy as np

from repro.api import deploy
from repro.config import FleetSpec
from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu import FailurePlan, compile_model
from repro.hdc import HDCClassifier
from repro.nn import from_classifier
from repro.serving import (
    ArrivalProcess,
    InferenceServer,
    ModelSwapper,
    RequestStream,
    ServeConfig,
)
from repro.tflite import convert


def train(x, y, num_classes, dimension, seed=0):
    model = HDCClassifier(dimension=dimension, seed=seed)
    model.fit(x, y, iterations=4, num_classes=num_classes)
    network = from_classifier(model, include_argmax=True)
    return compile_model(convert(network, x[:128]))


def main(num_requests: int = 800, dimension: int = 1024,
         rate_hz: float = 200.0, deadline_s: float = 0.05) -> None:
    config = StreamConfig(num_features=24, num_classes=4, drift_rate=0.08)
    stream = DriftingStream(config, seed=11)
    train_x, train_y = stream.next_batch(400)
    compiled = train(train_x, train_y, config.num_classes, dimension)

    trace = list(RequestStream(
        stream, ArrivalProcess(rate_hz, "poisson", seed=3),
        deadline_s=deadline_s,
    ).generate(num_requests))
    print(f"trace: {num_requests} requests over "
          f"{trace[-1].arrival_s:.2f} s at {rate_hz:.0f} Hz, "
          f"deadline {1e3 * deadline_s:.0f} ms")

    # --- Deadline-aware vs fixed-size batching -----------------------
    deadline_aware = ServeConfig(batcher="dynamic", max_batch=32,
                                 slack_s=0.002)

    def serve(config, pool=None, swapper=None):
        if pool is None:
            pool = deploy(compiled, fleet=FleetSpec.single(count=2)).pool
        server = InferenceServer(pool, config, swapper=swapper)
        return server.serve(trace)

    dynamic = serve(deadline_aware)
    fixed = serve(ServeConfig(batcher="fixed", max_batch=32))
    for name, report in [("deadline-aware", dynamic), ("fixed-size", fixed)]:
        lat = report.latency
        print(f"{name:>14}: p50={1e3 * lat.p50:.1f} ms  "
              f"p95={1e3 * lat.p95:.1f} ms  p99={1e3 * lat.p99:.1f} ms  "
              f"misses={report.deadline_miss_rate:.1%}  "
              f"mean batch={report.mean_batch_size:.1f}")

    # --- Fault tolerance: USB stall on device 0 ----------------------
    pool = deploy(compiled, fleet=FleetSpec.single(count=2)).pool
    pool.schedule_failure(FailurePlan(0, at_s=1.0, mode="usb_stall"))
    degraded = serve(deadline_aware, pool=pool)
    identical = np.array_equal(degraded.predictions, dynamic.predictions)
    print(f"with a USB stall at t=1.0s: served {degraded.served}/"
          f"{len(trace)} (retried {degraded.retried_batches} batches, "
          f"{degraded.fallback_batches} on CPU fallback), predictions "
          f"identical to the healthy run: {identical}")

    # --- Hot swap under drift ----------------------------------------
    # Retrain on the freshest window so the swapped model tracks the
    # drifted distribution through the tail of the trace.
    cut = (7 * num_requests) // 10
    window = trace[cut - 250:cut]
    retrained = train(np.stack([r.features for r in window]),
                      np.array([r.label for r in window], dtype=np.int64),
                      config.num_classes, dimension, seed=1)
    pool = deploy(compiled, fleet=FleetSpec.single(count=2)).pool
    swapper = ModelSwapper(pool)
    swapper.schedule(retrained, at_s=trace[cut].arrival_s)
    swapped = serve(deadline_aware, pool=pool, swapper=swapper)
    record = swapped.swap_records[0]
    print(f"hot swap: scheduled t={record.scheduled_s:.2f} s, committed "
          f"t={record.committed_s:.2f} s (modelgen "
          f"{record.modelgen_seconds:.2f} s + load "
          f"{1e3 * record.load_seconds:.1f} ms)")
    static_acc = dynamic.windowed_accuracy(4)
    swap_acc = swapped.windowed_accuracy(4)
    print("windowed accuracy, static: "
          + "  ".join(f"{a:.2f}" for a in static_acc))
    print("windowed accuracy, swap:   "
          + "  ".join(f"{a:.2f}" for a in swap_acc))
    print(f"final-window recovery from the hot swap: "
          f"{swap_acc[-1] - static_acc[-1]:+.2f}")

    # --- Tiered graceful degradation under overload ------------------
    # Compress the trained model post-training into co-resident tiers
    # (full / DPQ-pruned / LDC-distilled), then overload one device
    # with sustained bursts: the tiered server sheds hot batches down
    # the ladder, the untiered one queues until deadlines blow.
    from repro.compression import TierSpec, build_tiers
    from repro.config import TierPolicy
    from repro.hdc.bagging import BaggingConfig, BaggingHDCTrainer

    calm_stream = DriftingStream(
        StreamConfig(num_features=24, num_classes=4, drift_rate=0.0),
        seed=11,
    )
    x, y = calm_stream.next_batch(400)
    trainer = BaggingHDCTrainer(
        BaggingConfig(num_models=4, dimension=4096, iterations=3), seed=0,
    )
    trainer.fit(x, y)
    ladder = build_tiers(
        trainer.fuse(), x[:128],
        specs=(TierSpec("full"),
               TierSpec("compressed", "dpq", dimension=1024),
               TierSpec("tiny", "ldc", dimension=256)),
        evaluation=(x, y),
    )
    print("tier ladder: " + "  ".join(
        f"{t.name}(d={t.dimension}, acc={t.build_accuracy:.2f})"
        for t in ladder
    ))
    burst_trace = list(RequestStream(
        calm_stream,
        ArrivalProcess(480_000.0, "bursty", seed=3, burst_factor=8.0,
                       burst_length=64, calm_length=128),
        deadline_s=0.001, drift_every=0,
    ).generate(2000))
    overload = ServeConfig(max_batch=64, max_queue=256,
                           tiers=TierPolicy(queue_high=16,
                                            headroom_s=0.0001))
    for tiered in (True, False):
        pool = deploy(ladder[0].compiled, fleet=FleetSpec.single()).pool
        server = InferenceServer(
            pool,
            config=overload if tiered else ServeConfig(max_batch=64,
                                                       max_queue=256),
            tiers=ladder if tiered else None,
        )
        report = server.serve(burst_trace)
        name = "tiered" if tiered else "untiered"
        mix = ("  mix=" + "/".join(map(str, report.tier_served))
               if tiered else "")
        print(f"{name:>9}: misses={report.deadline_miss_rate:.1%}  "
              f"drops={report.drop_rate:.1%}{mix}")


if __name__ == "__main__":
    main()
