"""Quickstart: train an HDC classifier and run it on the Edge TPU path.

Covers the library's core loop in ~40 lines:

1. load a dataset surrogate (ISOLET: 26-way spoken-letter classification);
2. train the paper's HDC model (nonlinear encoding + mistake-driven
   class-hypervector updates) in float on the "host CPU";
3. compile it to the hyper-wide neural network, quantize to int8, and
   run it through the Edge TPU simulator;
4. compare float vs quantized-accelerator accuracy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.data import isolet
from repro.hdc import HDCClassifier
from repro.nn import from_classifier
from repro.runtime import InferencePipeline
from repro.edgetpu import compile_model
from repro.tflite import convert


def main(max_samples: int = 3000, dimension: int = 4096,
         iterations: int = 10) -> None:
    # A reduced slice keeps the example fast; raise max_samples toward
    # the full 7797-sample dataset for paper-scale numbers.
    dataset = isolet(max_samples=max_samples, seed=42).normalized()
    print(f"dataset: {dataset.name}  train={dataset.num_train}  "
          f"test={dataset.num_test}  features={dataset.num_features}  "
          f"classes={dataset.num_classes}")

    # Float HDC training (the paper's CPU baseline).
    model = HDCClassifier(dimension=dimension, seed=42)
    history = model.fit(dataset.train_x, dataset.train_y,
                        iterations=iterations,
                        validation=(dataset.test_x, dataset.test_y))
    print(f"float accuracy after {history.iterations} iterations: "
          f"{model.score(dataset.test_x, dataset.test_y):.3f}")

    # Compile: HDC model -> wide NN -> int8 flat model -> Edge TPU.
    network = from_classifier(model, include_argmax=True)
    flat = convert(network, dataset.train_x[:256])
    compiled = compile_model(flat)
    print(compiled.summary())

    # Deploy on the device simulator at the real-time batch size.
    inference = InferencePipeline(compiled, batch=1)
    result = inference.run(dataset.test_x, dataset.test_y)
    per_sample_us = 1e6 * result.seconds / dataset.num_test
    print(f"Edge TPU accuracy: {result.accuracy:.3f}  "
          f"(modeled {per_sample_us:.1f} us/sample)")

    agreement = np.mean(result.predictions == model.predict(dataset.test_x))
    print(f"quantized/float prediction agreement: {agreement:.3f}")


if __name__ == "__main__":
    main()
