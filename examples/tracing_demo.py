"""Structured tracing: spans, metrics and exporters end to end.

Runs the whole co-design flow through the ``repro.api`` facade with
tracing enabled and shows what the observability subsystem captures:

1. train a small HDC model (``repro.train``) with a traced pipeline and
   print the span flamegraph — ``pipeline.train`` down through
   ``device.invoke`` leaves;
2. deploy it on a two-device pool and serve a Poisson request trace
   (``repro.serve``) with per-request spans and a live metrics
   registry;
3. export the serving trace to Chrome ``trace_event`` JSON (open it at
   ``chrome://tracing`` or https://ui.perfetto.dev) and to JSON-lines,
   then read the JSONL back to prove the round trip is lossless.

Tracing never changes a modeled second: the traced serve summary here
is bit-identical to an untraced run of the same trace.

Run:  python examples/tracing_demo.py
"""

import json
import tempfile
from pathlib import Path

import repro
from repro.data.streams import DriftingStream, StreamConfig
from repro.observability import (
    MetricsRegistry,
    flamegraph,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.serving import ArrivalProcess, RequestStream


def main(num_requests: int = 300, dimension: int = 1024,
         rate_hz: float = 200.0) -> None:
    config = StreamConfig(num_features=24, num_classes=4, drift_rate=0.0)
    stream = DriftingStream(config, seed=11)
    train_x, train_y = stream.next_batch(400)

    # --- 1. traced training -----------------------------------------
    trained = repro.train(
        train_x, train_y,
        config=repro.PipelineConfig(dimension=dimension, iterations=4,
                                    seed=0, tracing=True),
    )
    print("training flamegraph:")
    print(flamegraph(trained.trace, max_depth=3))
    phases = trained.summary()["phases"]
    print("phase totals (modeled s): "
          + "  ".join(f"{k}={v:.3f}" for k, v in phases.items() if v))

    # --- 2. traced serving with metrics -----------------------------
    deployment = repro.deploy(trained,
                              fleet=repro.FleetSpec.single(count=2))
    trace = list(RequestStream(
        stream, ArrivalProcess(rate_hz, "poisson", seed=3),
        deadline_s=0.05,
    ).generate(num_requests))
    metrics = MetricsRegistry()
    report = repro.serve(
        deployment, trace,
        config=repro.ServeConfig(max_batch=32, tracing=True),
        metrics=metrics,
    )
    print(f"\nserved {report.served}/{num_requests} requests in "
          f"{report.makespan_s:.2f} modeled s "
          f"({len(report.trace)} spans recorded)")
    summary = metrics.summary()
    print(f"metrics: requests={summary['counters']['serve.requests']}  "
          f"batches={summary['counters']['serve.batches']}  "
          f"peak queue={summary['gauges']['serve.queue_depth']['peak']:.0f}  "
          f"p99 latency="
          f"{1e3 * summary['histograms']['serve.latency_s']['p99_s']:.1f} ms")

    # --- 3. exporters ------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        chrome_path = Path(tmp) / "serve_trace.json"
        jsonl_path = Path(tmp) / "serve_trace.jsonl"
        num_events = write_chrome_trace(report.trace, chrome_path)
        num_spans = write_jsonl(report.trace, jsonl_path)
        tracks = {event["args"]["name"]
                  for event in json.loads(chrome_path.read_text())
                  ["traceEvents"] if event["ph"] == "M"}
        print(f"\nChrome trace: {num_events} events on tracks "
              f"{sorted(tracks)} -> {chrome_path.name}")
        restored = read_jsonl(jsonl_path)
        assert restored == report.trace.spans
        print(f"JSONL round trip: {num_spans} spans written and read "
              f"back losslessly")


if __name__ == "__main__":
    main()
