"""Edge deployment walkthrough: bagged training + fused-model inference.

The paper's full framework (Fig. 3) on the ISOLET speech workload:

1. train M = 4 narrow sub-models (d' = d/4) on bootstrap subsets with
   the encoding phase running on the (simulated) Edge TPU;
2. fuse them into one full-width inference model — a single TFLite-style
   file you could ship to a device;
3. deploy and measure the modeled latency breakdown at batch 1;
4. compare the whole thing against the plain (non-bagged) flow.

Run:  python examples/speech_keyword_deployment.py
"""

import tempfile
from pathlib import Path

from repro import PipelineConfig
from repro.data import isolet
from repro.hdc import BaggingConfig
from repro.runtime import InferencePipeline, TrainingPipeline
from repro.tflite import FlatModel


def train_and_report(name: str, pipeline: TrainingPipeline, dataset):
    result = pipeline.run(dataset.train_x, dataset.train_y,
                          num_classes=dataset.num_classes)
    print(result.profiler.report(f"{name} training (modeled)"))
    inference = InferencePipeline(result.compiled, batch=1)
    outcome = inference.run(dataset.test_x, dataset.test_y)
    per_sample_us = 1e6 * outcome.seconds / dataset.num_test
    print(f"{name}: accuracy={outcome.accuracy:.3f}  "
          f"latency={per_sample_us:.1f} us/sample\n")
    return result, outcome


def main(max_samples: int = 3000, dimension: int = 4096) -> None:
    dataset = isolet(max_samples=max_samples, seed=7).normalized()

    plain = TrainingPipeline(
        PipelineConfig(dimension=dimension, iterations=10, seed=7)
    )
    plain_result, _ = train_and_report("plain", plain, dataset)

    bagging = BaggingConfig(num_models=4, dimension=dimension, iterations=4,
                            dataset_ratio=0.6)
    bagged = TrainingPipeline(
        PipelineConfig(dimension=dimension, bagging=bagging, seed=7)
    )
    bagged_result, _ = train_and_report("bagged", bagged, dataset)

    speedup = (plain_result.profiler.seconds("update")
               / bagged_result.profiler.seconds("update"))
    print(f"bagging update-phase speedup: {speedup:.2f}x "
          f"(paper reports up to 4.74x at full scale)")

    # The fused model is one ordinary flat file: save, reload, verify.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "isolet-fused.rtfl"
        bagged_result.inference_model.save(path)
        restored = FlatModel.load(path)
        print(f"\nfused model on disk: {path.stat().st_size} bytes, "
              f"ops={[op.kind for op in restored.ops]}")


if __name__ == "__main__":
    main()
