"""Federated HDC across a fleet of edge nodes.

The deployment the paper's introduction motivates: devices keep their
data local, train HDC class hypervectors on-device (encoding would run
on each node's Edge TPU), and a server aggregates by weighted averaging.
The run compares an IID fleet against a severely label-skewed (non-IID)
one and totals the communication — which is tiny, because only the
``k x d`` class matrix ever crosses the network.

Run:  python examples/federated_edge_fleet.py
"""

from repro.data import ucihar
from repro.federated import FederatedConfig, FederatedSimulation
from repro.hdc import HDCClassifier


def run_fleet(dataset, non_iid_alpha, label: str, dimension: int,
              rounds: int) -> None:
    config = FederatedConfig(
        num_nodes=8, rounds=rounds, local_iterations=2,
        dimension=dimension, non_iid_alpha=non_iid_alpha,
    )
    result = FederatedSimulation(config, seed=11).run(dataset)
    curve = "  ".join(f"{a:.3f}" for a in result.round_accuracy)
    print(f"  {label}:")
    print(f"    accuracy by round: {curve}")
    print(f"    node sample counts: {result.node_sample_counts}")
    print(f"    classes per node:   {result.node_class_counts}")
    print(f"    total traffic: {result.total_communication_bytes / 1e6:.2f} MB")


def main(max_samples: int = 3000, dimension: int = 2048,
         rounds: int = 5) -> None:
    dataset = ucihar(max_samples=max_samples, seed=11).normalized()
    print(f"dataset: {dataset.name}  train={dataset.num_train}  "
          f"classes={dataset.num_classes}")

    # Centralized reference: one model sees all the data.
    central = HDCClassifier(dimension=dimension, seed=11)
    central.fit(dataset.train_x, dataset.train_y, iterations=6)
    print(f"centralized accuracy: "
          f"{central.score(dataset.test_x, dataset.test_y):.3f}\n")

    print("== federated fleets (8 nodes) ==")
    run_fleet(dataset, None, "IID split", dimension, rounds)
    run_fleet(dataset, 0.2, "non-IID split (Dirichlet alpha=0.2)",
              dimension, rounds)

    raw_bytes = dataset.train_x.nbytes
    model_bytes = dataset.num_classes * dimension * 4
    print(f"\nuploading raw training data would cost "
          f"{raw_bytes / 1e6:.2f} MB once; a model round costs "
          f"{model_bytes / 1e3:.0f} KB per node and never reveals samples")


if __name__ == "__main__":
    main()
