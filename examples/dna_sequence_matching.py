"""Sequence classification with HDC n-gram encoding (GenieHD-style).

The paper's related work cites HDC DNA pattern matching (GenieHD, DAC
2020).  This example classifies synthetic DNA reads by their source
"organism": each organism is a reference genome; reads are noisy
substrings.  The n-gram sequence encoder (binding + permutation) turns
variable-length reads into fixed hypervectors, after which the standard
classifier — and therefore the Edge TPU similarity-search path — applies
unchanged.

Run:  python examples/dna_sequence_matching.py
"""

import numpy as np

from repro.hdc import HDCClassifier, SequenceEncoder

BASES = "ACGT"


def make_reads(rng, genomes, reads_per_genome, read_length,
               mutation_rate=0.05):
    """Sample noisy reads: random substrings with point mutations."""
    reads, labels = [], []
    for label, genome in enumerate(genomes):
        for _ in range(reads_per_genome):
            start = rng.integers(0, len(genome) - read_length)
            read = genome[start:start + read_length].copy()
            mutations = rng.random(read_length) < mutation_rate
            read[mutations] = rng.integers(0, 4, mutations.sum())
            reads.append(read)
            labels.append(label)
    return reads, np.array(labels, dtype=np.int64)


def main(num_genomes: int = 4, genome_length: int = 3000,
         read_length: int = 100, dimension: int = 4096,
         reads_per_genome: int = 150) -> None:
    rng = np.random.default_rng(13)
    genomes = [rng.integers(0, 4, genome_length)
               for _ in range(num_genomes)]
    train_reads, train_y = make_reads(rng, genomes, reads_per_genome,
                                      read_length)
    test_reads, test_y = make_reads(rng, genomes, reads_per_genome // 3,
                                    read_length)
    print(f"{num_genomes} genomes of {genome_length} bases; "
          f"{len(train_reads)} train / {len(test_reads)} test reads of "
          f"{read_length} bases (5% point mutations)")

    encoder = SequenceEncoder(alphabet_size=4, dimension=dimension,
                              ngram=4, seed=13)
    train_x = encoder.encode_batch(train_reads)
    test_x = encoder.encode_batch(test_reads)

    model = HDCClassifier(dimension=dimension, seed=13)
    model.fit(train_x, train_y, iterations=5, encoded=True,
              num_classes=num_genomes)
    accuracy = model.score(test_x, test_y, encoded=True)
    print(f"read-origin classification accuracy: {accuracy:.3f}")

    # Show the encoding's mutation tolerance: a clean read and its
    # mutated copy stay far more similar than unrelated reads.
    clean = genomes[0][:read_length]
    mutated = clean.copy()
    flips = rng.random(read_length) < 0.1
    mutated[flips] = rng.integers(0, 4, flips.sum())
    unrelated = rng.integers(0, 4, read_length)
    e = encoder.encode_batch([clean, mutated, unrelated])
    norm = np.linalg.norm
    sim_mut = float(e[0] @ e[1] / (norm(e[0]) * norm(e[1])))
    sim_rand = float(e[0] @ e[2] / (norm(e[0]) * norm(e[2])))
    print(f"similarity to 10%-mutated copy: {sim_mut:.3f}; "
          f"to an unrelated read: {sim_rand:.3f}")


if __name__ == "__main__":
    main()
