"""HDC regression: calibrating a nonlinear sensor on the edge.

A common edge task the classification paper does not cover but its
cited RegHD line does: learn a continuous mapping (here, recovering a
physical quantity from a nonlinear, cross-sensitive sensor array)
with the same lightweight hypervector machinery.  Compares the online
residual-update rule against the closed-form ridge fit and a linear
baseline.

Run:  python examples/sensor_regression.py
"""

import numpy as np

from repro.hdc import HDCRegressor


def make_sensor_data(rng, num_samples, num_sensors=6):
    """Ground truth passes through a saturating, cross-sensitive array."""
    truth = rng.uniform(-2.0, 2.0, num_samples)
    interference = rng.standard_normal((num_samples, num_sensors - 1)) * 0.5
    readings = np.empty((num_samples, num_sensors), dtype=np.float32)
    # Each sensor responds nonlinearly to the truth plus neighbours.
    gains = rng.uniform(0.5, 1.5, num_sensors)
    for sensor in range(num_sensors):
        cross = interference[:, sensor % (num_sensors - 1)]
        readings[:, sensor] = np.tanh(gains[sensor] * truth + 0.4 * cross) \
            + rng.normal(0, 0.05, num_samples)
    return readings, truth


def r_squared(y, pred):
    return 1.0 - np.square(y - pred).sum() / np.square(y - y.mean()).sum()


def main(num_samples: int = 2000, dimension: int = 4096) -> None:
    rng = np.random.default_rng(23)
    x, y = make_sensor_data(rng, num_samples)
    split = int(0.8 * num_samples)
    tx, ty, vx, vy = x[:split], y[:split], x[split:], y[split:]
    print(f"{x.shape[1]}-sensor array, {split} calibration samples")

    # Linear baseline: the array's tanh response defeats it at the range
    # extremes.
    design = np.c_[tx, np.ones(len(tx))]
    coef, *_ = np.linalg.lstsq(design, ty, rcond=None)
    linear_pred = np.c_[vx, np.ones(len(vx))] @ coef
    print(f"linear least squares:   R^2 = {r_squared(vy, linear_pred):.3f}")

    online = HDCRegressor(dimension=dimension, learning_rate=0.2, seed=23)
    online.fit(tx, ty, iterations=15)
    print(f"HDC online (15 passes): R^2 = {online.score(vx, vy):.3f}")

    ridge = HDCRegressor(dimension=dimension, seed=23)
    ridge.fit_ridge(tx, ty, regularization=0.05)
    print(f"HDC ridge (closed form): R^2 = {ridge.score(vx, vy):.3f}")

    worst = np.argmax(np.abs(ridge.predict(vx) - vy))
    print(f"worst-case error: {abs(ridge.predict(vx)[worst] - vy[worst]):.3f} "
          f"at truth {vy[worst]:+.2f}")


if __name__ == "__main__":
    main()
