"""Wearable activity recognition: streaming updates and the PAMAP2 lesson.

Two things the paper's evaluation teaches about low-feature sensor
workloads (PAMAP2: 27 IMU features, 5 activities):

1. HDC trains *online* — class hypervectors update per sample, so an
   edge device can keep learning as a user wears the sensor.  This
   script simulates day-by-day streaming with ``partial_fit``.
2. Such narrow inputs are the accelerator's worst case (paper Fig. 10
   and the PAMAP2 columns of Figs. 5/6): the fixed USB/dispatch costs
   dwarf the tiny matmul, so the co-design framework keeps this
   workload on the CPU.  The cost model shows the crossover directly.

Run:  python examples/activity_recognition.py
"""

import numpy as np

from repro.data import TABLE_I, pamap2
from repro.hdc import AdaptiveHDCClassifier
from repro.runtime import CostModel, HdcTrainingConfig, Workload


def streaming_training(dataset, dimension: int = 2048) -> None:
    print("== streaming (online) training ==")
    model = AdaptiveHDCClassifier(dimension=dimension, seed=3)
    days = np.array_split(np.arange(dataset.num_train), 5)
    for day, indices in enumerate(days, start=1):
        model.partial_fit(dataset.train_x[indices], dataset.train_y[indices],
                          num_classes=dataset.num_classes)
        accuracy = model.score(dataset.test_x, dataset.test_y)
        print(f"  after day {day}: test accuracy {accuracy:.3f} "
              f"({model.history.updates[-1]} updates)")


def placement_decision() -> None:
    print("\n== accelerator placement: should PAMAP2 use the TPU? ==")
    cm = CostModel()
    config = HdcTrainingConfig()
    for name in ("pamap2", "mnist"):
        workload = Workload.from_spec(TABLE_I[name])
        cpu = cm.cpu_inference(workload, config)
        tpu = cm.tpu_inference(workload, config)
        winner = "TPU" if tpu < cpu else "CPU"
        print(f"  {name:7} ({workload.num_features:3} features): "
              f"CPU {1e6 * cpu / workload.num_test:7.1f} us/sample vs "
              f"TPU {1e6 * tpu / workload.num_test:7.1f} us/sample "
              f"-> run inference on the {winner}")
    print("  (paper Sec. IV-E: few-feature datasets are 'not suitable "
          "for acceleration on the Edge TPU')")


def main(max_samples: int = 4000, dimension: int = 2048) -> None:
    dataset = pamap2(max_samples=max_samples, seed=3).normalized()
    print(f"dataset: {dataset.name}  features={dataset.num_features}  "
          f"classes={dataset.num_classes}")
    streaming_training(dataset, dimension=dimension)
    placement_decision()


if __name__ == "__main__":
    main()
